#include "analyzer/costmodel.h"

#include <algorithm>
#include <set>
#include <utility>

namespace gral::analyzer
{

namespace
{

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.substr(0, prefix.size()) == prefix;
}

} // namespace

bool
inHotPathScope(const std::string &path)
{
    return startsWith(path, "src/cachesim/") ||
           startsWith(path, "src/spmv/") ||
           startsWith(path, "src/kernels/") ||
           startsWith(path, "src/exec/") ||
           startsWith(path, "src/graph/storage/");
}

std::vector<HotOp>
detectHotOps(const TokenStream &ts, std::size_t begin,
             std::size_t end, const TuView &tu)
{
    std::vector<HotOp> ops;
    end = std::min(end, ts.tokens.size());
    auto push = [&](const Token &t, std::size_t i,
                    std::string_view rule, std::string what,
                    std::string advice) {
        ops.push_back({std::string(rule), std::move(what),
                       std::move(advice), i, t.line, t.column});
    };
    for (std::size_t i = begin; i < end; ++i) {
        const Token &t = ts.tokens[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        bool memberCall = i > 0 &&
                          (ts.tokens[i - 1].text == "." ||
                           ts.tokens[i - 1].text == "->") &&
                          ts.is(i + 1, "(");

        if (memberCall &&
            (t.text == "counter" || t.text == "gauge" ||
             t.text == "histogram" || t.text == "series")) {
            push(t, i, "hot-path-metrics",
                 "MetricsRegistry name lookup",
                 "resolve the Counter/Gauge/Histogram/Series "
                 "reference once before the loop (obs/metrics.h)");
            continue;
        }
        if (t.text == "MetricsRegistry" && ts.is(i + 1, "::") &&
            ts.isIdent(i + 2, "global") && ts.is(i + 3, "(")) {
            push(t, i, "hot-path-metrics",
                 "MetricsRegistry::global() lookup",
                 "hoist the registry handle out of the hot path");
            continue;
        }
        if (t.text == "GRAL_SPAN" && ts.is(i + 1, "(")) {
            push(t, i, "hot-path-span",
                 "GRAL_SPAN records one span per iteration",
                 "hoist it to the enclosing scope");
            continue;
        }
        if (t.text == "new" || t.text == "make_unique" ||
            t.text == "make_shared") {
            push(t, i, "hot-path-alloc", "allocation",
                 "hoist or reserve outside the loop");
            continue;
        }
        if (t.text == "lock_guard" || t.text == "scoped_lock" ||
            t.text == "unique_lock" || t.text == "shared_lock" ||
            (memberCall &&
             (t.text == "lock" || t.text == "try_lock"))) {
            push(t, i, "hot-path-lock", "mutex acquisition",
                 "move locking out of the per-iteration path or "
                 "switch to an atomic/sharded design");
            continue;
        }
        if (memberCall && t.text == "readCounters") {
            push(t, i, "hot-path-perf-read",
                 "perf counter group read(2)",
                 "a group read is a syscall per call; count across "
                 "the whole region (GRAL_PERF_SCOPE) and read once "
                 "at its end");
            continue;
        }
        if (memberCall &&
            tu.virtualFunctions.count(std::string(t.text)) != 0) {
            push(t, i, "hot-path-virtual",
                 "virtual call to '" + std::string(t.text) + "()'",
                 "devirtualize the per-element path (batch per "
                 "buffer, template on the concrete type, or mark "
                 "the class final)");
            continue;
        }
    }
    return ops;
}

std::vector<HotRange>
collectHotRanges(const TokenStream &ts, const TuView &tu)
{
    std::vector<HotRange> ranges;
    for (const LoopRange &loop : loopBodies(ts, 0, ts.tokens.size()))
        ranges.push_back({loop.begin, loop.end, ""});

    // Functions transitively called from a hot range, resolved by
    // name against this file's definitions.
    std::set<std::string> hotFunctions;
    bool grew = true;
    while (grew) {
        grew = false;
        std::set<std::string> called;
        for (const HotRange &range : ranges)
            for (const CallSite &call :
                 callSites(ts, range.begin, range.end))
                called.insert(call.name);
        for (const FunctionSymbol &fn : tu.local->functions) {
            if (!fn.hasBody || called.count(fn.name) == 0 ||
                hotFunctions.count(fn.name) != 0)
                continue;
            hotFunctions.insert(fn.name);
            ranges.push_back({fn.bodyBegin + 1, fn.bodyEnd, fn.name});
            grew = true;
        }
    }
    return ranges;
}

void
runCostModelRules(const std::string &path, const LexedFile &lexed,
                  const TokenStream &ts, const TuView &tu,
                  std::vector<Finding> &findings)
{
    if (!inHotPathScope(path))
        return;
    // (rule, token) pairs already reported — hot ranges overlap
    // (nested loops, functions called from several loops).
    std::set<std::pair<std::string, std::size_t>> reported;
    for (const HotRange &range : collectHotRanges(ts, tu)) {
        for (HotOp &op : detectHotOps(ts, range.begin, range.end, tu)) {
            if (!reported.insert({op.rule, op.tokenIndex}).second)
                continue;
            if (lexed.isSuppressed(op.line, op.rule))
                continue;
            std::string where =
                range.via.empty()
                    ? "inside a loop body"
                    : "in '" + range.via +
                          "()', which is reachable from a loop body";
            findings.push_back({path, op.line, op.column, op.rule,
                                op.what + " " + where + "; " +
                                    op.advice});
        }
    }
}

} // namespace gral::analyzer
