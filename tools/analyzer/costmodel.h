/**
 * @file
 * Cost-model rule pack: hot-path checks with reachability.
 *
 * v1 flagged expensive constructs only when they sat lexically inside
 * a loop body. v2 computes, per file, the set of "hot" token ranges:
 * every loop body, plus the body of every function transitively
 * called (by name, within the file) from a hot range. The checks then
 * run over the union:
 *
 *   hot-path-metrics  MetricsRegistry name lookup
 *                     (.counter()/.gauge()/.histogram()/.series(),
 *                     MetricsRegistry::global())
 *   hot-path-span     GRAL_SPAN(...)
 *   hot-path-alloc    new / std::make_unique / std::make_shared
 *   hot-path-lock     mutex acquisition (std::lock_guard/scoped_lock/
 *                     unique_lock/shared_lock, manual .lock())
 *   hot-path-virtual  member call to a method declared virtual
 *                     anywhere in the TU view
 *   hot-path-perf-read  perf group .readCounters() — a syscall per
 *                     call; count the whole region via
 *                     GRAL_PERF_SCOPE and read once at its end
 *
 * Scope: src/cachesim/, src/spmv/, src/kernels/ (and the exec/storage
 * layers they drive) — the simulator and kernel hot paths. Findings
 * in a called function say which function made them reachable.
 *
 * v3 closes the cross-TU hole: the same detectHotOps() scanner runs
 * over every function body in the repo while the program index
 * (index.h) is built, and the whole-program call-graph fixpoint then
 * flags a call from a hot range to an allocating/locking/... helper
 * *defined in another file* — previously invisible to the same-TU
 * pass below. The building blocks (hot-range collection, op
 * detection) are exported here so both passes agree byte-for-byte on
 * what is expensive.
 */

#ifndef GRAL_ANALYZER_COSTMODEL_H
#define GRAL_ANALYZER_COSTMODEL_H

#include <string>
#include <vector>

#include "analyzer/rules.h"

namespace gral::analyzer
{

/** True when @p path is inside the hot-path rule scope. */
bool inHotPathScope(const std::string &path);

/** One expensive construct found in a token range. */
struct HotOp
{
    std::string rule; // hot-path-*
    std::string what; // "allocation", "mutex acquisition", ...
    std::string advice;
    std::size_t tokenIndex = 0;
    int line = 1;
    int column = 1;
};

/**
 * Detect expensive constructs in [begin, end); virtual calls are
 * resolved against @p tu's virtualFunctions set.
 */
std::vector<HotOp> detectHotOps(const TokenStream &ts,
                                std::size_t begin, std::size_t end,
                                const TuView &tu);

/** One hot range: a loop body, or the body of a function reachable
 *  from one (via = that function's name, "" for a loop body). */
struct HotRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::string via;
};

/** Every hot range of the file: loop bodies plus the bodies of
 *  same-file functions transitively called from one. */
std::vector<HotRange> collectHotRanges(const TokenStream &ts,
                                       const TuView &tu);

/** Run the hot-path rules over @p ts (path-scoped). */
void runCostModelRules(const std::string &path,
                       const LexedFile &lexed, const TokenStream &ts,
                       const TuView &tu,
                       std::vector<Finding> &findings);

} // namespace gral::analyzer

#endif // GRAL_ANALYZER_COSTMODEL_H
