/**
 * @file
 * Cost-model rule pack: hot-path checks with intra-procedural
 * reachability.
 *
 * v1 flagged expensive constructs only when they sat lexically inside
 * a loop body. v2 computes, per file, the set of "hot" token ranges:
 * every loop body, plus the body of every function transitively
 * called (by name, within the file) from a hot range. The checks then
 * run over the union:
 *
 *   hot-path-metrics  MetricsRegistry name lookup
 *                     (.counter()/.gauge()/.histogram()/.series(),
 *                     MetricsRegistry::global())
 *   hot-path-span     GRAL_SPAN(...)
 *   hot-path-alloc    new / std::make_unique / std::make_shared
 *   hot-path-lock     mutex acquisition (std::lock_guard/scoped_lock/
 *                     unique_lock/shared_lock, manual .lock())
 *   hot-path-virtual  member call to a method declared virtual
 *                     anywhere in the TU view
 *   hot-path-perf-read  perf group .readCounters() — a syscall per
 *                     call; count the whole region via
 *                     GRAL_PERF_SCOPE and read once at its end
 *
 * Scope: src/cachesim/, src/spmv/, src/kernels/ — the simulator and
 * kernel hot paths. Findings in a called function say which function
 * made them reachable.
 */

#ifndef GRAL_ANALYZER_COSTMODEL_H
#define GRAL_ANALYZER_COSTMODEL_H

#include <string>
#include <vector>

#include "analyzer/rules.h"

namespace gral::analyzer
{

/** Run the hot-path rules over @p ts (path-scoped). */
void runCostModelRules(const std::string &path,
                       const LexedFile &lexed, const TokenStream &ts,
                       const TuView &tu,
                       std::vector<Finding> &findings);

} // namespace gral::analyzer

#endif // GRAL_ANALYZER_COSTMODEL_H
