#include "analyzer/baseline.h"

#include <algorithm>
#include <sstream>

namespace gral::analyzer
{

namespace
{

/** Collapse runs of whitespace to single spaces and trim. */
std::string
normalize(std::string_view text)
{
    std::string out;
    bool pendingSpace = false;
    for (char c : text) {
        if (c == ' ' || c == '\t') {
            pendingSpace = !out.empty();
        } else {
            if (pendingSpace)
                out += ' ';
            pendingSpace = false;
            out += c;
        }
    }
    return out;
}

} // namespace

Baseline
Baseline::parse(std::string_view text)
{
    Baseline baseline;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        std::string_view line = text.substr(
            start, end == std::string_view::npos ? std::string_view::npos
                                                 : end - start);
        if (!line.empty() && line.back() == '\r')
            line.remove_prefix(0), line = line.substr(0, line.size() - 1);
        if (!line.empty() && line.front() != '#') {
            std::string key(line);
            auto it = std::find_if(
                baseline.entries_.begin(), baseline.entries_.end(),
                [&](const auto &e) { return e.first == key; });
            if (it == baseline.entries_.end())
                baseline.entries_.emplace_back(std::move(key), 1);
            else
                ++it->second;
        }
        if (end == std::string_view::npos)
            break;
        start = end + 1;
    }
    return baseline;
}

std::string
Baseline::key(const Finding &finding, std::string_view stripped_line)
{
    return finding.path + "|" + finding.rule + "|" +
           normalize(stripped_line);
}

bool
Baseline::match(const std::string &key)
{
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const auto &e) { return e.first == key; });
    if (it == entries_.end() || it->second == 0)
        return false;
    --it->second;
    return true;
}

std::string
Baseline::render(const std::vector<std::string> &keys)
{
    std::ostringstream out;
    out << "# gral-analyzer baseline — acknowledged findings that do\n"
           "# not fail repo_analyze. One entry per finding:\n"
           "#   <path>|<rule>|<normalized source line>\n"
           "# Regenerate with: gral_analyzer --write-baseline\n";
    for (const std::string &key : keys)
        out << key << '\n';
    return out.str();
}

} // namespace gral::analyzer
