#include "analyzer/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "analyzer/fixit.h"
#include "analyzer/include_graph.h"
#include "exec/thread_pool.h"

namespace gral::analyzer
{

namespace
{

namespace fs = std::filesystem;

bool
analyzableSuffix(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

/** Original text split into lines (for include extraction). */
std::vector<std::string>
splitLines(std::string_view text)
{
    std::vector<std::string> lines(1);
    for (char c : text) {
        if (c == '\n')
            lines.emplace_back();
        else
            lines.back() += c;
    }
    return lines;
}

/** Line of the nth (1-based) stripped line, "" when out of range. */
std::string_view
strippedLine(const LexedFile &lexed, int line)
{
    if (line < 1 ||
        static_cast<std::size_t>(line) > lexed.lines.size())
        return {};
    return lexed.lines[static_cast<std::size_t>(line) - 1];
}

/** Per-file working state of one run. */
struct FileState
{
    bool lexed = false;
    LexedFile lex;
    bool symbols = false;
    TokenStream ts;
    FileSymbols sym;
};

/** Run @p fn over every index in @p work, parallel when worthwhile. */
void
runParallel(const std::vector<std::size_t> &work, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<unsigned>(
        jobs, static_cast<unsigned>(std::max<std::size_t>(
                  work.size(), 1)));
    if (jobs > 1 && work.size() > 1) {
        WorkStealingPool pool(jobs);
        pool.run(work.size(),
                 [&](std::size_t k) { fn(work[k]); });
    } else {
        for (std::size_t index : work)
            fn(index);
    }
}

/** A finding plus the stripped source line its baseline key uses. */
struct Item
{
    Finding finding;
    std::string line;
};

} // namespace

std::vector<const Finding *>
AnalysisResult::newFindings() const
{
    std::vector<const Finding *> fresh;
    for (const SarifResult &result : results)
        if (!result.baselined)
            fresh.push_back(&result.finding);
    return fresh;
}

SourceTree
loadTree(const std::string &root)
{
    SourceTree tree;
    for (const char *top : {"src", "tools", "bench", "examples"}) {
        fs::path base = fs::path(root) / top;
        if (!fs::is_directory(base))
            continue;
        for (const fs::directory_entry &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !analyzableSuffix(entry.path()))
                continue;
            std::ifstream in(entry.path(), std::ios::binary);
            std::ostringstream content;
            content << in.rdbuf();
            tree.push_back(
                {fs::relative(entry.path(), root).generic_string(),
                 content.str()});
        }
    }
    std::sort(tree.begin(), tree.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    return tree;
}

AnalysisResult
analyzeTree(const SourceTree &tree, Baseline baseline,
            const AnalyzeOptions &options)
{
    AnalysisResult analysis;
    const std::size_t n = tree.size();
    analysis.filesScanned = n;

    std::vector<std::string> paths;
    paths.reserve(n);
    std::map<std::string, std::size_t> pathIndex;
    for (const SourceFile &file : tree) {
        pathIndex[file.path] = paths.size();
        paths.push_back(file.path);
    }
    auto indexOf = [&](const std::string &path) -> std::size_t {
        auto it = pathIndex.find(path);
        return it != pathIndex.end() ? it->second : n;
    };

    // ------------------------------------------------ dirty marking
    Cache *cache = options.cache;
    std::vector<std::uint64_t> hashes(n);
    std::vector<char> cachedOk(n, 0);
    std::vector<char> dirty(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        hashes[i] = contentHash(tree[i].content);
        if (cache != nullptr) {
            auto it = cache->entries.find(paths[i]);
            if (it != cache->entries.end() &&
                it->second.hash == hashes[i]) {
                cachedOk[i] = 1;
                dirty[i] = 0;
            }
        }
    }

    // -------------------------------- lex what is known dirty so far
    std::vector<FileState> state(n);
    auto lexBatch = [&](const std::vector<std::size_t> &batch) {
        runParallel(batch, options.jobs, [&](std::size_t i) {
            state[i].lex = lexCpp(tree[i].content);
            state[i].lexed = true;
        });
    };
    std::vector<std::size_t> firstBatch;
    for (std::size_t i = 0; i < n; ++i)
        if (dirty[i])
            firstBatch.push_back(i);
    lexBatch(firstBatch);

    // Include lists: fresh for dirty files, cached for clean ones
    // (cached includes equal fresh ones — the bytes are unchanged).
    std::vector<std::vector<IncludeDirective>> includes(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (state[i].lexed)
            includes[i] = extractIncludes(
                state[i].lex.lines, splitLines(tree[i].content));
        else
            includes[i] = cache->entries.at(paths[i]).includes;
    }

    IncludeGraph graph(paths, includes);

    // Forward and reverse adjacency over resolved edges.
    std::vector<std::vector<std::size_t>> fwd(n), rev(n);
    for (const IncludeEdge &edge : graph.edges()) {
        std::size_t from = indexOf(edge.from);
        std::size_t to = indexOf(edge.to);
        if (from >= n || to >= n)
            continue;
        fwd[from].push_back(to);
        rev[to].push_back(from);
    }

    // ------------------- expand dirty through reverse include edges
    {
        std::vector<std::size_t> queue;
        for (std::size_t i = 0; i < n; ++i)
            if (dirty[i])
                queue.push_back(i);
        std::vector<std::size_t> added;
        while (!queue.empty()) {
            std::size_t to = queue.back();
            queue.pop_back();
            for (std::size_t from : rev[to])
                if (!dirty[from]) {
                    dirty[from] = 1;
                    queue.push_back(from);
                    added.push_back(from);
                }
        }
        lexBatch(added);
    }

    // ----------------------------------------- --files selection
    std::vector<char> analyzed(dirty.begin(), dirty.end());
    if (!options.selectFiles.empty()) {
        std::vector<char> selected(n, 0);
        std::vector<std::size_t> queue;
        for (const std::string &path : options.selectFiles) {
            std::size_t i = indexOf(path);
            if (i < n && !selected[i]) {
                selected[i] = 1;
                queue.push_back(i);
            }
        }
        while (!queue.empty()) { // dependents of the selection
            std::size_t to = queue.back();
            queue.pop_back();
            for (std::size_t from : rev[to])
                if (!selected[from]) {
                    selected[from] = 1;
                    queue.push_back(from);
                }
        }
        for (std::size_t i = 0; i < n; ++i)
            analyzed[i] = analyzed[i] && selected[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        if (analyzed[i])
            ++analysis.filesAnalyzed;

    // ------------- symbols: analyzed files + their TU dependencies
    std::vector<char> needSymbols(analyzed.begin(), analyzed.end());
    {
        std::vector<std::size_t> queue;
        for (std::size_t i = 0; i < n; ++i)
            if (needSymbols[i])
                queue.push_back(i);
        while (!queue.empty()) {
            std::size_t from = queue.back();
            queue.pop_back();
            for (std::size_t to : fwd[from])
                if (!needSymbols[to]) {
                    needSymbols[to] = 1;
                    queue.push_back(to);
                }
        }
        std::vector<std::size_t> lexMore;
        for (std::size_t i = 0; i < n; ++i)
            if (needSymbols[i] && !state[i].lexed)
                lexMore.push_back(i);
        lexBatch(lexMore);
        std::vector<std::size_t> symbolBatch;
        for (std::size_t i = 0; i < n; ++i)
            if (needSymbols[i])
                symbolBatch.push_back(i);
        runParallel(symbolBatch, options.jobs, [&](std::size_t i) {
            state[i].ts = tokenize(state[i].lex);
            state[i].sym = buildSymbols(state[i].ts);
            state[i].symbols = true;
        });
    }

    // TU view of file i: symbols of every transitive include.
    auto makeTuView = [&](std::size_t i) {
        std::vector<const FileSymbols *> deps;
        std::vector<char> seen(n, 0);
        seen[i] = 1;
        std::vector<std::size_t> queue = {i};
        while (!queue.empty()) {
            std::size_t from = queue.back();
            queue.pop_back();
            for (std::size_t to : fwd[from])
                if (!seen[to]) {
                    seen[to] = 1;
                    queue.push_back(to);
                    if (state[to].symbols)
                        deps.push_back(&state[to].sym);
                }
        }
        return buildTuView(state[i].sym, deps);
    };

    // ---------------------------- per-file rules on the dirty set
    std::vector<std::vector<Finding>> perFile(n);
    {
        std::vector<std::size_t> ruleBatch;
        for (std::size_t i = 0; i < n; ++i)
            if (analyzed[i])
                ruleBatch.push_back(i);
        runParallel(ruleBatch, options.jobs, [&](std::size_t i) {
            TuView tu = makeTuView(i);
            runFileRules(paths[i], state[i].lex, state[i].ts, tu,
                         perFile[i]);
        });
    }

    // ------------------- cross-TU program index (refresh + reuse)
    ProgramIndex transientIndex;
    ProgramIndex *index =
        options.index != nullptr ? options.index : &transientIndex;
    {
        std::vector<char> rebuild(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            auto it = index->entries.find(paths[i]);
            if (it == index->entries.end() ||
                it->second.hash != hashes[i])
                rebuild[i] = 1;
            else
                ++analysis.indexEntriesReused;
        }
        // Rebuilding an entry needs lexed+symboled state for the
        // file and for its TU dependencies (the hot-op detector
        // resolves virtual methods against the TU view).
        std::vector<char> needState(n, 0);
        {
            std::vector<std::size_t> queue;
            for (std::size_t i = 0; i < n; ++i)
                if (rebuild[i] && !needState[i]) {
                    needState[i] = 1;
                    queue.push_back(i);
                }
            while (!queue.empty()) {
                std::size_t from = queue.back();
                queue.pop_back();
                for (std::size_t to : fwd[from])
                    if (!needState[to]) {
                        needState[to] = 1;
                        queue.push_back(to);
                    }
            }
            std::vector<std::size_t> lexMore;
            for (std::size_t i = 0; i < n; ++i)
                if (needState[i] && !state[i].lexed)
                    lexMore.push_back(i);
            lexBatch(lexMore);
            std::vector<std::size_t> symbolMore;
            for (std::size_t i = 0; i < n; ++i)
                if (needState[i] && !state[i].symbols)
                    symbolMore.push_back(i);
            runParallel(symbolMore, options.jobs,
                        [&](std::size_t i) {
                            state[i].ts = tokenize(state[i].lex);
                            state[i].sym =
                                buildSymbols(state[i].ts);
                            state[i].symbols = true;
                        });
        }
        std::vector<TuIndex> built(n);
        std::vector<std::size_t> buildBatch;
        for (std::size_t i = 0; i < n; ++i)
            if (rebuild[i])
                buildBatch.push_back(i);
        analysis.indexEntriesBuilt = buildBatch.size();
        runParallel(buildBatch, options.jobs, [&](std::size_t i) {
            TuView tu = makeTuView(i);
            built[i] = buildTuIndex(paths[i], hashes[i],
                                    state[i].lex, state[i].ts, tu);
        });
        std::map<std::string, TuIndex> refreshed;
        for (std::size_t i = 0; i < n; ++i) {
            if (rebuild[i])
                refreshed[paths[i]] = std::move(built[i]);
            else
                refreshed[paths[i]] =
                    std::move(index->entries.at(paths[i]));
        }
        // Deleted files drop out here: only current paths survive.
        index->entries = std::move(refreshed);
    }

    // -------------------------------------------- assemble findings
    std::vector<Item> items;
    for (std::size_t i = 0; i < n; ++i) {
        if (analyzed[i]) {
            for (Finding &finding : perFile[i])
                items.push_back(
                    {finding, std::string(strippedLine(
                                  state[i].lex, finding.line))});
        } else if (cachedOk[i] && !dirty[i]) {
            for (const CachedFinding &cached :
                 cache->entries.at(paths[i]).findings)
                items.push_back(
                    {cached.finding, cached.strippedLine});
        }
        // dirty but unanalyzed (filtered by --files): no findings —
        // and below, no cache entry either, so nothing goes stale.
    }

    // Graph rules need suppression checks and stripped lines for
    // files that were never lexed this run; those are clean cached
    // files, whose entries carry both.
    auto suppressedAt = [&](std::size_t i, int line,
                            std::string_view rule) {
        if (state[i].lexed)
            return state[i].lex.isSuppressed(line, rule);
        if (cache != nullptr) {
            auto it = cache->entries.find(paths[i]);
            if (it != cache->entries.end())
                return it->second.isSuppressed(line, rule);
        }
        return false;
    };
    auto lineAt = [&](std::size_t i, int line) -> std::string {
        if (state[i].lexed)
            return std::string(strippedLine(state[i].lex, line));
        return std::string(
            cache->entries.at(paths[i]).includeLineAt(line));
    };

    for (const IncludeEdge &edge : graph.edges()) {
        const std::string fromModule = moduleOf(edge.from);
        const std::string toModule = moduleOf(edge.to);
        if (!edge.from.starts_with("src/"))
            continue; // layering restricts src/ only
        std::size_t fromIndex = indexOf(edge.from);
        auto flag = [&](const std::string &message) {
            if (fromIndex < n &&
                suppressedAt(fromIndex, edge.line, "layering"))
                return;
            items.push_back(
                {{edge.from, edge.line, 1, "layering", message},
                 fromIndex < n ? lineAt(fromIndex, edge.line)
                               : std::string()});
        };
        if (toModule == "bench" || toModule == "tools" ||
            toModule == "tests") {
            flag("src/ must not include " + toModule + "/ (" +
                 edge.to + ")");
            continue;
        }
        const std::set<std::string> *allowed =
            allowedIncludes(fromModule);
        if (allowed == nullptr) {
            flag("module '" + fromModule +
                 "' is not in the layering DAG; add it to "
                 "tools/analyzer/include_graph.cc and DESIGN.md");
            continue;
        }
        if (allowed->count(toModule) == 0)
            flag("module '" + fromModule + "' may not include '" +
                 toModule + "' (" + edge.to +
                 "); allowed layers are listed in DESIGN.md "
                 "\"Static analysis layer\"");
    }

    for (const std::vector<std::string> &cycle : graph.findCycles()) {
        // Anchor the finding at the edge that closes the cycle.
        const std::string &from = cycle[cycle.size() - 2];
        const std::string &to = cycle.back();
        int line = 1;
        for (const IncludeEdge &edge : graph.edges())
            if (edge.from == from && edge.to == to) {
                line = edge.line;
                break;
            }
        std::size_t fromIndex = indexOf(from);
        if (fromIndex < n &&
            suppressedAt(fromIndex, line, "include-cycle"))
            continue;
        std::string chain;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            if (i != 0)
                chain += " -> ";
            chain += cycle[i];
        }
        items.push_back({{from, line, 1, "include-cycle",
                          "include cycle: " + chain},
                         fromIndex < n ? lineAt(fromIndex, line)
                                       : std::string()});
    }

    // Whole-program hot-path pass over the merged index. Like the
    // graph rules it re-runs every time; suppressions are checked
    // at the call site (lexed state or cache entry), and baseline
    // keys use the stripped line carried in the index.
    for (CrossTuFinding &cross : runCrossTuRules(*index)) {
        std::size_t i = indexOf(cross.finding.path);
        if (i < n &&
            suppressedAt(i, cross.finding.line, cross.finding.rule))
            continue;
        items.push_back(
            {std::move(cross.finding), cross.strippedLine});
    }

    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) {
                  return std::tie(a.finding.path, a.finding.line,
                                  a.finding.rule,
                                  a.finding.column) <
                         std::tie(b.finding.path, b.finding.line,
                                  b.finding.rule, b.finding.column);
              });

    // ------------------------------------- baseline disposition
    for (Item &item : items) {
        std::string key = Baseline::key(item.finding, item.line);
        bool known = baseline.match(key);
        analysis.results.push_back(
            {std::move(item.finding), known, std::move(key)});
    }

    // -------------------------------------------- cache refresh
    if (cache != nullptr) {
        std::map<std::string, CacheEntry> refreshed;
        for (std::size_t i = 0; i < n; ++i) {
            if (analyzed[i]) {
                CacheEntry entry;
                entry.hash = hashes[i];
                entry.includes = includes[i];
                for (const IncludeDirective &inc : includes[i])
                    entry.includeLines.push_back(std::string(
                        strippedLine(state[i].lex, inc.line)));
                entry.suppressions = state[i].lex.suppressions;
                for (const Finding &finding : perFile[i])
                    entry.findings.push_back(
                        {finding,
                         std::string(strippedLine(state[i].lex,
                                                  finding.line))});
                refreshed[paths[i]] = std::move(entry);
            } else if (cachedOk[i] && !dirty[i]) {
                refreshed[paths[i]] =
                    cache->entries.at(paths[i]);
            }
            // dirty-but-unanalyzed: deliberately dropped, so the
            // next unrestricted run re-analyzes it.
        }
        cache->entries = std::move(refreshed);
    }
    return analysis;
}

AnalysisResult
analyzeTree(const SourceTree &tree, Baseline baseline, unsigned jobs)
{
    AnalyzeOptions options;
    options.jobs = jobs;
    return analyzeTree(tree, std::move(baseline), options);
}

std::vector<std::string>
applyFixes(SourceTree &tree, const AnalysisResult &analysis)
{
    std::map<std::string, std::vector<FixIt>> edits;
    for (const SarifResult &result : analysis.results) {
        if (result.baselined || result.finding.fixits.empty())
            continue;
        std::vector<FixIt> &slot = edits[result.finding.path];
        slot.insert(slot.end(), result.finding.fixits.begin(),
                    result.finding.fixits.end());
    }
    std::vector<std::string> changed;
    for (SourceFile &file : tree) {
        auto it = edits.find(file.path);
        if (it == edits.end())
            continue;
        std::string edited = applyFixIts(file.content, it->second);
        if (edited != file.content) {
            file.content = std::move(edited);
            changed.push_back(file.path);
        }
    }
    std::sort(changed.begin(), changed.end());
    return changed;
}

} // namespace gral::analyzer
