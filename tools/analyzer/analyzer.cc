#include "analyzer/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include "analyzer/include_graph.h"
#include "spmv/thread_pool.h"

namespace gral::analyzer
{

namespace
{

namespace fs = std::filesystem;

bool
analyzableSuffix(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp";
}

/** Original text split into lines (for include extraction). */
std::vector<std::string>
splitLines(std::string_view text)
{
    std::vector<std::string> lines(1);
    for (char c : text) {
        if (c == '\n')
            lines.emplace_back();
        else
            lines.back() += c;
    }
    return lines;
}

/** Line of the nth (1-based) stripped line, "" when out of range. */
std::string_view
strippedLine(const LexedFile &lexed, int line)
{
    if (line < 1 ||
        static_cast<std::size_t>(line) > lexed.lines.size())
        return {};
    return lexed.lines[static_cast<std::size_t>(line) - 1];
}

} // namespace

std::vector<const Finding *>
AnalysisResult::newFindings() const
{
    std::vector<const Finding *> fresh;
    for (const SarifResult &result : results)
        if (!result.baselined)
            fresh.push_back(&result.finding);
    return fresh;
}

SourceTree
loadTree(const std::string &root)
{
    SourceTree tree;
    for (const char *top : {"src", "tools", "bench", "examples"}) {
        fs::path base = fs::path(root) / top;
        if (!fs::is_directory(base))
            continue;
        for (const fs::directory_entry &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() ||
                !analyzableSuffix(entry.path()))
                continue;
            std::ifstream in(entry.path(), std::ios::binary);
            std::ostringstream content;
            content << in.rdbuf();
            tree.push_back(
                {fs::relative(entry.path(), root).generic_string(),
                 content.str()});
        }
    }
    std::sort(tree.begin(), tree.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    return tree;
}

AnalysisResult
analyzeTree(const SourceTree &tree, Baseline baseline, unsigned jobs)
{
    AnalysisResult analysis;
    analysis.filesScanned = tree.size();

    // Phase 1: lex + per-file rules, parallel over files. Each slot
    // is owned by exactly one task, so no locking is needed.
    std::vector<LexedFile> lexed(tree.size());
    std::vector<std::vector<Finding>> perFile(tree.size());
    std::vector<std::vector<IncludeDirective>> includes(tree.size());

    auto scanOne = [&](std::size_t index) {
        const SourceFile &file = tree[index];
        lexed[index] = lexCpp(file.content);
        includes[index] = extractIncludes(
            lexed[index].lines, splitLines(file.content));
        runFileRules(file.path, lexed[index], perFile[index]);
    };
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min<unsigned>(
        jobs, std::max<std::size_t>(tree.size(), 1));
    if (jobs > 1 && tree.size() > 1) {
        WorkStealingPool pool(jobs);
        pool.run(tree.size(), scanOne);
    } else {
        for (std::size_t i = 0; i < tree.size(); ++i)
            scanOne(i);
    }

    std::vector<Finding> findings;
    for (std::vector<Finding> &chunk : perFile)
        findings.insert(findings.end(), chunk.begin(), chunk.end());

    // Phase 2: include-graph rules (layering + cycles).
    std::vector<std::string> paths;
    paths.reserve(tree.size());
    for (const SourceFile &file : tree)
        paths.push_back(file.path);
    IncludeGraph graph(paths, includes);

    auto lexedOf = [&](const std::string &path) -> const LexedFile * {
        auto it = std::lower_bound(
            paths.begin(), paths.end(), path);
        if (it == paths.end() || *it != path)
            return nullptr;
        return &lexed[static_cast<std::size_t>(it - paths.begin())];
    };

    for (const IncludeEdge &edge : graph.edges()) {
        const std::string fromModule = moduleOf(edge.from);
        const std::string toModule = moduleOf(edge.to);
        if (!edge.from.starts_with("src/"))
            continue; // layering restricts src/ only
        const LexedFile *fromLexed = lexedOf(edge.from);
        auto flag = [&](const std::string &message) {
            if (fromLexed &&
                fromLexed->isSuppressed(edge.line, "layering"))
                return;
            findings.push_back(
                {edge.from, edge.line, 1, "layering", message});
        };
        if (toModule == "bench" || toModule == "tools" ||
            toModule == "tests") {
            flag("src/ must not include " + toModule + "/ (" +
                 edge.to + ")");
            continue;
        }
        const std::set<std::string> *allowed =
            allowedIncludes(fromModule);
        if (allowed == nullptr) {
            flag("module '" + fromModule +
                 "' is not in the layering DAG; add it to "
                 "tools/analyzer/include_graph.cc and DESIGN.md");
            continue;
        }
        if (allowed->count(toModule) == 0)
            flag("module '" + fromModule + "' may not include '" +
                 toModule + "' (" + edge.to +
                 "); allowed layers are listed in DESIGN.md "
                 "\"Static analysis layer\"");
    }

    for (const std::vector<std::string> &cycle : graph.findCycles()) {
        // Anchor the finding at the edge that closes the cycle.
        const std::string &from = cycle[cycle.size() - 2];
        const std::string &to = cycle.back();
        int line = 1;
        for (const IncludeEdge &edge : graph.edges())
            if (edge.from == from && edge.to == to) {
                line = edge.line;
                break;
            }
        const LexedFile *fromLexed = lexedOf(from);
        if (fromLexed &&
            fromLexed->isSuppressed(line, "include-cycle"))
            continue;
        std::string chain;
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            if (i != 0)
                chain += " -> ";
            chain += cycle[i];
        }
        findings.push_back({from, line, 1, "include-cycle",
                            "include cycle: " + chain});
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.path, a.line, a.rule, a.column) <
                         std::tie(b.path, b.line, b.rule, b.column);
              });

    // Phase 3: baseline disposition.
    for (Finding &finding : findings) {
        const LexedFile *fileLexed = lexedOf(finding.path);
        std::string key = Baseline::key(
            finding, fileLexed
                         ? strippedLine(*fileLexed, finding.line)
                         : std::string_view());
        bool known = baseline.match(key);
        analysis.results.push_back(
            {std::move(finding), known, std::move(key)});
    }
    return analysis;
}

} // namespace gral::analyzer
