#!/usr/bin/env python3
"""Repo-specific lint pass for gral (see DESIGN.md "Correctness layer").

DEPRECATED: superseded by the C++ analyzer in tools/analyzer
(`gral_analyzer`, ctest `repo_analyze`), which enforces these five
rules plus layering, include-cycle, hot-path, and API-misuse rules on
a real lexer with SARIF output. This script stays for one release as
a shim; only its --self-test (and the analyzer equivalence test in
tests/analyzer/) still run in CI.

Rules enforced over the C++ tree:

  raw-assert      no raw assert() / <cassert> in src/ — invariants use
                  GRAL_CHECK / GRAL_DCHECK (common/check.h) so they
                  carry a message and fire in RelWithDebInfo builds.
  vertex-id-type  loop counters compared against numVertices() must be
                  VertexId, not a raw integer type (types.h aliases).
  include-guard   every header under src/ uses either #pragma once or
                  an include guard named GRAL_<PATH>_H matching its
                  path (src/graph/csr.h -> GRAL_GRAPH_CSR_H).
  std-endl        no std::endl in src/, tools/, bench/, or examples/ —
                  it flushes; hot loops want '\n'.
  raw-cerr        no raw std::cerr in src/ — library code reports
                  through GRAL_LOG (obs/log.h), which carries a level,
                  a timestamp, and structured fields, and is the one
                  sink tests can capture. (The logger itself writes to
                  std::clog.) Tools and benches may keep std::cerr for
                  usage errors.

Comments and string literals are stripped before the text rules run,
so prose ("replacement for raw assert()") never trips them.

Usage:
  python3 tools/lint/gral_lint.py [--root DIR]   lint the repo (exit 1
                                                 on findings)
  python3 tools/lint/gral_lint.py --self-test    run the built-in rule
                                                 fixtures
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

# Directories for each rule, relative to the repo root.
SRC_ONLY = ("src",)
NO_ENDL_DIRS = ("src", "tools", "bench", "examples")


# Raw string literal intro: optional encoding prefix, R, opening
# quote. The delimiter (up to 16 chars, no whitespace/parens) follows.
RAW_INTRO_RE = re.compile(r'(?:u8|u|U|L)?R"')
RAW_DELIM_RE = re.compile(r'[^\s()\\"]{0,16}\(')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers stay exact. C++ raw strings
    (R"(...)" and R"delim(...)delim") are consumed as a unit — a ')'
    or '"' inside one must not desync the lexer (historically it did,
    hiding or fabricating findings on every later line)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif (c in 'uULR'
              and (intro := RAW_INTRO_RE.match(text, i))
              and (i == 0 or not (text[i - 1].isalnum()
                                  or text[i - 1] == "_"))
              and (delim := RAW_DELIM_RE.match(text, intro.end()))):
            terminator = ")" + delim.group()[:-1] + '"'
            close = text.find(terminator, delim.end())
            stop = n if close == -1 else close + len(terminator)
            for j in range(i, stop):
                if text[j] == "\n":
                    out.append("\n")
            i = stop
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_lines(code: str):
    for lineno, line in enumerate(code.split("\n"), start=1):
        yield lineno, line


RAW_ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
CASSERT_RE = re.compile(r'#\s*include\s*[<"]cassert[>"]')
STATIC_ASSERT_RE = re.compile(r"static_assert\s*\(")

VERTEX_LOOP_RE = re.compile(
    r"for\s*\(\s*(?:std::)?(?:uint(?:32|64)_t|unsigned(?:\s+int)?|int|"
    r"size_t|std::size_t)\s+(\w+)[^;]*;\s*\1\s*<\s*[\w.\->]*"
    r"numVertices\(\)"
)

ENDL_RE = re.compile(r"std\s*::\s*endl")
CERR_RE = re.compile(r"std\s*::\s*cerr")

GUARD_IFNDEF_RE = re.compile(r"#\s*ifndef\s+(\w+)")
PRAGMA_ONCE_RE = re.compile(r"#\s*pragma\s+once")


def expected_guard(relpath: pathlib.PurePath) -> str:
    parts = list(relpath.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return f"GRAL_{stem.upper()}_H"


def check_raw_assert(relpath, code, findings):
    for lineno, line in iter_lines(code):
        stripped = STATIC_ASSERT_RE.sub("", line)
        if RAW_ASSERT_RE.search(stripped):
            findings.append(
                (relpath, lineno, "raw-assert",
                 "use GRAL_CHECK/GRAL_DCHECK (common/check.h) instead "
                 "of raw assert()"))
        if CASSERT_RE.search(line):
            findings.append(
                (relpath, lineno, "raw-assert",
                 "<cassert> is banned in src/; include common/check.h"))


def check_vertex_id_type(relpath, code, findings):
    for lineno, line in iter_lines(code):
        if VERTEX_LOOP_RE.search(line):
            findings.append(
                (relpath, lineno, "vertex-id-type",
                 "loop over numVertices() must use VertexId "
                 "(graph/types.h), not a raw integer type"))


def check_std_endl(relpath, code, findings):
    for lineno, line in iter_lines(code):
        if ENDL_RE.search(line):
            findings.append(
                (relpath, lineno, "std-endl",
                 "std::endl flushes the stream; use '\\n'"))


def check_raw_cerr(relpath, code, findings):
    for lineno, line in iter_lines(code):
        if CERR_RE.search(line):
            findings.append(
                (relpath, lineno, "raw-cerr",
                 "library code logs via GRAL_LOG (obs/log.h), not raw "
                 "std::cerr"))


def check_include_guard(relpath, code, findings):
    if PRAGMA_ONCE_RE.search(code):
        return
    match = GUARD_IFNDEF_RE.search(code)
    want = expected_guard(relpath)
    if not match:
        findings.append(
            (relpath, 1, "include-guard",
             f"header has neither #pragma once nor an include guard "
             f"(expected {want})"))
        return
    got = match.group(1)
    lineno = code[: match.start()].count("\n") + 1
    if got != want:
        findings.append(
            (relpath, lineno, "include-guard",
             f"guard {got} does not match path-derived name {want}"))
        return
    if not re.search(r"#\s*define\s+" + re.escape(want) + r"\b", code):
        findings.append(
            (relpath, lineno, "include-guard",
             f"#ifndef {want} is not followed by #define {want}"))


def lint_tree(root: pathlib.Path):
    findings = []
    for top in sorted(set(SRC_ONLY + NO_ENDL_DIRS)):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            relpath = path.relative_to(root)
            code = strip_comments_and_strings(
                path.read_text(encoding="utf-8", errors="replace"))
            if top in SRC_ONLY:
                check_raw_assert(relpath, code, findings)
                check_vertex_id_type(relpath, code, findings)
                check_raw_cerr(relpath, code, findings)
                if path.suffix in {".h", ".hpp"}:
                    check_include_guard(relpath, code, findings)
            check_std_endl(relpath, code, findings)
    return findings


SELF_TEST_CASES = [
    # (rule, file name, snippet, should_fire)
    ("raw-assert", "src/x.cc", "void f() { assert(a == b); }", True),
    ("raw-assert", "src/x.cc", "#include <cassert>\n", True),
    ("raw-assert", "src/x.cc", "static_assert(sizeof(int) == 4);",
     False),
    ("raw-assert", "src/x.cc", "// replacement for raw assert()\n",
     False),
    ("raw-assert", "src/x.cc", "GRAL_CHECK(a == b) << \"assert(\";",
     False),
    # Raw strings are consumed as a unit; their contents never lint.
    ("raw-assert", "src/x.cc",
     'const char *s = R"(assert(ok))";\n', False),
    ("raw-assert", "src/x.cc",
     'const char *s = R"delim(assert(ok))delim";\n', False),
    # A quote inside a raw string must not desync later lines: the
    # assert after the literal is real and must still fire.
    ("raw-assert", "src/x.cc",
     'auto s = R"(")";\nassert(broken);\n', True),
    ("std-endl", "src/x.cc",
     'auto s = R"(std::endl)";\nout << value;\n', False),
    ("raw-cerr", "src/x.cc",
     'auto s = R"x(std::cerr << "oops")x"; std::cerr << s;\n', True),
    ("vertex-id-type", "src/x.cc",
     "for (std::uint32_t v = 0; v < g.numVertices(); ++v) {}", True),
    ("vertex-id-type", "src/x.cc",
     "for (VertexId v = 0; v < g.numVertices(); ++v) {}", False),
    ("vertex-id-type", "src/x.cc",
     "for (std::size_t i = 0; i < parts.size(); ++i) {}", False),
    ("std-endl", "src/x.cc", "out << v << std::endl;", True),
    ("std-endl", "src/x.cc", "out << v << '\\n';", False),
    ("raw-cerr", "src/x.cc", "std::cerr << \"oops\\n\";", True),
    ("raw-cerr", "src/x.cc", "std :: cerr << x;", True),
    ("raw-cerr", "src/x.cc", "// std::cerr in a comment\n", False),
    ("raw-cerr", "src/x.cc", "std::clog << line;", False),
    ("raw-cerr", "src/x.cc",
     "GRAL_LOG(warn) << \"use std::cerr? no\";", False),
    ("include-guard", "src/graph/csr.h",
     "#ifndef GRAL_GRAPH_CSR_H\n#define GRAL_GRAPH_CSR_H\n#endif",
     False),
    ("include-guard", "src/graph/csr.h",
     "#ifndef WRONG_NAME_H\n#define WRONG_NAME_H\n#endif", True),
    ("include-guard", "src/graph/csr.h", "#pragma once\n", False),
    ("include-guard", "src/graph/csr.h", "int x;\n", True),
]


def self_test() -> int:
    failures = 0
    for rule, name, snippet, should_fire in SELF_TEST_CASES:
        relpath = pathlib.PurePath(name)
        code = strip_comments_and_strings(snippet)
        findings = []
        if rule == "raw-assert":
            check_raw_assert(relpath, code, findings)
        elif rule == "vertex-id-type":
            check_vertex_id_type(relpath, code, findings)
        elif rule == "std-endl":
            check_std_endl(relpath, code, findings)
        elif rule == "raw-cerr":
            check_raw_cerr(relpath, code, findings)
        elif rule == "include-guard":
            check_include_guard(relpath, code, findings)
        fired = any(f[2] == rule for f in findings)
        if fired != should_fire:
            failures += 1
            print(f"self-test FAIL [{rule}] on {snippet!r}: "
                  f"fired={fired}, expected {should_fire}")
    if failures:
        print(f"{failures} self-test case(s) failed")
        return 1
    print(f"self-test OK ({len(SELF_TEST_CASES)} cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above "
                             "this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in rule fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(
        args.root
        or pathlib.Path(__file__).resolve().parent.parent.parent)
    findings = lint_tree(root)
    for relpath, lineno, rule, message in findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"gral_lint: {len(findings)} finding(s)")
        return 1
    print("gral_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
