/**
 * @file
 * Tests for the RCM and DBG reorderers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "metrics/aid.h"
#include "reorder/dbg.h"
#include "reorder/rcm.h"

namespace gral
{
namespace
{

TEST(Rcm, ValidOnSmallGraphs)
{
    for (const Graph &graph :
         {makePath(20), makeStar(20), makeGrid(5, 5), makeCycle(9)}) {
        RcmOrder ra;
        Permutation p = ra.reorder(graph);
        EXPECT_TRUE(p.isValid());
    }
}

TEST(Rcm, ReducesBandwidthOfShuffledGrid)
{
    // A grid has natural banded structure; RCM must recover a small
    // average gap from a shuffled version.
    Graph grid = makeGrid(30, 30);
    Graph shuffled = applyPermutation(
        grid, randomPermutation(grid.numVertices(), 3));
    RcmOrder ra;
    Graph recovered =
        applyPermutation(shuffled, ra.reorder(shuffled));
    EXPECT_LT(averageGapProfile(recovered),
              averageGapProfile(shuffled) / 4.0);
}

TEST(Rcm, BfsLevelsStayContiguousOnPath)
{
    // RCM on a path yields consecutive numbering (up to reversal).
    Graph graph = makePath(50);
    RcmOrder ra;
    Permutation p = ra.reorder(graph);
    for (VertexId v = 1; v < 50; ++v) {
        auto gap = static_cast<std::int64_t>(p.newId(v)) -
                   static_cast<std::int64_t>(p.newId(v - 1));
        EXPECT_EQ(std::abs(gap), 1);
    }
}

TEST(Rcm, HandlesDisconnectedGraphs)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}, {3, 4}, {4, 3}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(5, edges, options);
    RcmOrder ra;
    EXPECT_TRUE(ra.reorder(graph).isValid());
}

TEST(Rcm, Deterministic)
{
    WebGraphParams params;
    params.numVertices = 2000;
    Graph graph = generateWebGraph(params);
    RcmOrder a;
    RcmOrder b;
    EXPECT_EQ(a.reorder(graph), b.reorder(graph));
}

TEST(Dbg, ValidOnSmallGraphs)
{
    for (const Graph &graph :
         {makePath(20), makeStar(20), makeGrid(5, 5)}) {
        DbgOrder ra;
        EXPECT_TRUE(ra.reorder(graph).isValid());
    }
}

TEST(Dbg, HotGroupFirstColdLast)
{
    Graph graph = makeStar(200);
    DbgOrder ra;
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    // The centre (hottest) must come before every leaf.
    for (VertexId leaf = 1; leaf < 200; ++leaf)
        EXPECT_LT(p.newId(0), p.newId(leaf));
}

TEST(Dbg, PreservesOrderWithinGroups)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    DbgConfig config;
    config.numGroups = 4;
    DbgOrder ra(config);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());

    // Vertices with identical degree profiles in the same group keep
    // relative order: check that within the lowest group (coldest),
    // original order is monotone.
    Permutation inv = p.inverse();
    double average = graph.averageDegree();
    VertexId previous = 0;
    bool first = true;
    for (VertexId position = 0; position < graph.numVertices();
         ++position) {
        VertexId v = inv.newId(position);
        double degree =
            (graph.inDegree(v) + graph.outDegree(v)) / 2.0;
        if (degree <= average / 2.0) { // deep in the cold group
            if (!first)
                EXPECT_GT(v, previous);
            previous = v;
            first = false;
        }
    }
}

TEST(Dbg, SingleGroupIsIdentity)
{
    Graph graph = makeGrid(6, 6);
    DbgConfig config;
    config.numGroups = 1;
    DbgOrder ra(config);
    EXPECT_EQ(ra.reorder(graph),
              Permutation::identity(graph.numVertices()));
}

TEST(Dbg, Deterministic)
{
    WebGraphParams params;
    params.numVertices = 1500;
    Graph graph = generateWebGraph(params);
    DbgOrder a;
    DbgOrder b;
    EXPECT_EQ(a.reorder(graph), b.reorder(graph));
}

} // namespace
} // namespace gral
