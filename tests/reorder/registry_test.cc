/**
 * @file
 * Tests for the reorderer registry and cross-RA invariants.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.h"
#include "graph/validate.h"
#include "graph/generators.h"
#include "reorder/registry.h"

namespace gral
{
namespace
{

TEST(Registry, KnownNamesConstruct)
{
    for (const std::string &name : reordererNames()) {
        ReordererPtr ra = makeReorderer(name);
        ASSERT_NE(ra, nullptr) << name;
        EXPECT_FALSE(ra->name().empty());
    }
}

TEST(Registry, AliasesWork)
{
    EXPECT_EQ(makeReorderer("Bl")->name(), "Identity");
    EXPECT_EQ(makeReorderer("SlashBurn")->name(), "SlashBurn");
    EXPECT_EQ(makeReorderer("SB++")->name(), "SlashBurn++");
    EXPECT_EQ(makeReorderer("GOrder")->name(), "GOrder");
    EXPECT_EQ(makeReorderer("RO")->name(), "RabbitOrder");
}

TEST(Registry, UnknownNameThrows)
{
    EXPECT_THROW((void)makeReorderer("NotAnAlgorithm"),
                 std::invalid_argument);
}

/** A deliberately broken RA: maps every vertex to new ID 0, so its
 *  output is never a bijection on graphs with more than one vertex. */
class BrokenReorderer final : public Reorderer
{
  public:
    std::string
    name() const override
    {
        return "Broken";
    }

    Permutation
    reorder(const GraphView &graph) override
    {
        return Permutation(
            std::vector<VertexId>(graph.numVertices(), 0));
    }
};

/** The registry wrapper must reject a non-bijective inner result.
 *  This test fails if the validation layer is stubbed out — the
 *  broken permutation would then escape unnoticed. */
TEST(Registry, ValidatingWrapperRejectsBrokenReorderer)
{
    ValidatingReorderer ra(std::make_unique<BrokenReorderer>());
    EXPECT_EQ(ra.name(), "Broken");
    Graph graph = makePath(8);
    EXPECT_THROW((void)ra.reorder(graph), ValidationError);
}

TEST(Registry, ValidatingWrapperPassesThroughGoodResults)
{
    ValidatingReorderer ra(makeReorderer("Identity"));
    Graph graph = makePath(8);
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
    EXPECT_EQ(p.size(), graph.numVertices());
}

TEST(Registry, ValidatingWrapperRejectsNullInner)
{
    EXPECT_THROW(ValidatingReorderer{nullptr}, CheckError);
}

/** Every registered RA must emit a valid permutation on every graph
 *  shape — the core contract of the paper's Section II-E. */
class EveryRaProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryRaProperty, ValidOnVariedShapes)
{
    ReordererPtr ra = makeReorderer(GetParam());
    SocialNetworkParams sn;
    sn.numVertices = 400;
    sn.edgesPerVertex = 5;
    WebGraphParams wg;
    wg.numVertices = 400;
    wg.meanOutDegree = 8;
    for (const Graph &graph :
         {makePath(30), makeStar(30), makeGrid(6, 6),
          generateSocialNetwork(sn), generateWebGraph(wg)}) {
        Permutation p = ra->reorder(graph);
        EXPECT_TRUE(p.isValid()) << GetParam();
        EXPECT_EQ(p.size(), graph.numVertices());
    }
}

TEST_P(EveryRaProperty, RelabeledGraphPreservesEdgeCount)
{
    ReordererPtr ra = makeReorderer(GetParam());
    WebGraphParams wg;
    wg.numVertices = 300;
    wg.meanOutDegree = 10;
    Graph graph = generateWebGraph(wg);
    Permutation p = ra->reorder(graph);
    Graph relabeled = applyPermutation(graph, p);
    EXPECT_EQ(relabeled.numEdges(), graph.numEdges());
    EXPECT_EQ(relabeled.numVertices(), graph.numVertices());
}

INSTANTIATE_TEST_SUITE_P(AllRas, EveryRaProperty,
                         ::testing::ValuesIn(reordererNames()));

} // namespace
} // namespace gral
