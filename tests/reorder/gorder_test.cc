/**
 * @file
 * Tests for the GOrder reorderer.
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"
#include "reorder/gorder.h"

namespace gral
{
namespace
{

TEST(GOrder, ValidPermutationOnSmallGraphs)
{
    for (const Graph &graph :
         {makePath(20), makeStar(20), makeGrid(5, 5), makeCycle(9)}) {
        GOrder ra;
        Permutation p = ra.reorder(graph);
        EXPECT_TRUE(p.isValid());
    }
}

TEST(GOrder, EmptyGraph)
{
    Graph graph;
    GOrder ra;
    Permutation p = ra.reorder(graph);
    EXPECT_EQ(p.size(), 0u);
}

TEST(GOrder, SeedIsMaxDegreeVertex)
{
    Graph graph = makeStar(50);
    GOrder ra;
    Permutation p = ra.reorder(graph);
    EXPECT_EQ(p.newId(0), 0u); // the star centre seeds the order
}

TEST(GOrder, NeighboursOfSeedFollowIt)
{
    // Star: after the centre, every leaf has score 1 (edge to the
    // centre), so leaves fill the next positions — no vertex can
    // appear before a leaf that has score 0.
    Graph graph = makeStar(20);
    GOrder ra;
    Permutation p = ra.reorder(graph);
    for (VertexId leaf = 1; leaf < 20; ++leaf)
        EXPECT_GT(p.newId(leaf), 0u);
}

TEST(GOrder, SiblingsClusterTogether)
{
    // Two disjoint "families": vertices sharing a common in-neighbour
    // (siblings) should receive closer IDs than unrelated vertices.
    // parents: 0 -> {2..9}, 1 -> {10..17}.
    std::vector<Edge> edges;
    for (VertexId child = 2; child < 10; ++child)
        edges.push_back({0, child});
    for (VertexId child = 10; child < 18; ++child)
        edges.push_back({1, child});
    Graph graph(18, edges);
    GOrder ra;
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());

    // Measure average intra-family ID spread vs inter-family spread.
    auto spread = [&](VertexId lo, VertexId hi) {
        double sum = 0.0;
        int count = 0;
        for (VertexId a = lo; a < hi; ++a)
            for (VertexId b = a + 1; b < hi; ++b) {
                sum += std::abs(static_cast<double>(p.newId(a)) -
                                static_cast<double>(p.newId(b)));
                ++count;
            }
        return sum / count;
    };
    double intra = (spread(2, 10) + spread(10, 18)) / 2.0;
    // Random assignment would give intra spread ~ n/3 = 6; GOrder
    // packs siblings adjacently.
    EXPECT_LT(intra, 4.0);
}

TEST(GOrder, Deterministic)
{
    SocialNetworkParams params;
    params.numVertices = 1000;
    params.edgesPerVertex = 5;
    Graph graph = generateSocialNetwork(params);
    GOrder a;
    GOrder b;
    EXPECT_EQ(a.reorder(graph), b.reorder(graph));
}

TEST(GOrder, WindowSizeConfigurable)
{
    SocialNetworkParams params;
    params.numVertices = 500;
    params.edgesPerVertex = 5;
    Graph graph = generateSocialNetwork(params);
    GOrderConfig config;
    config.windowSize = 10;
    GOrder ra(config);
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
    EXPECT_EQ(ra.config().windowSize, 10u);
}

TEST(GOrder, HubCapDoesNotBreakValidity)
{
    Graph graph = makeStar(200);
    GOrderConfig config;
    config.maxExpandOutDegree = 4; // centre excluded from expansion
    GOrder ra(config);
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
}

TEST(GOrder, DisconnectedComponentsAllPlaced)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2},
                               {4, 5}, {5, 4}};
    Graph graph(6, edges);
    GOrder ra;
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
}

TEST(GOrder, StatsPopulated)
{
    Graph graph = makeGrid(6, 6);
    GOrder ra;
    ra.reorder(graph);
    EXPECT_GT(ra.stats().peakFootprintBytes, 0u);
    EXPECT_GE(ra.stats().preprocessSeconds, 0.0);
}

} // namespace
} // namespace gral
