/**
 * @file
 * Tests for the baseline reorderers.
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"
#include "reorder/baselines.h"

namespace gral
{
namespace
{

TEST(IdentityOrder, IsIdentity)
{
    Graph graph = makeGrid(4, 4);
    IdentityOrder ra;
    Permutation p = ra.reorder(graph);
    EXPECT_EQ(p, Permutation::identity(graph.numVertices()));
    EXPECT_EQ(ra.name(), "Identity");
}

TEST(RandomOrder, ValidAndSeeded)
{
    Graph graph = makeGrid(8, 8);
    RandomOrder a(7);
    RandomOrder b(7);
    RandomOrder c(8);
    Permutation pa = a.reorder(graph);
    EXPECT_TRUE(pa.isValid());
    EXPECT_EQ(pa, b.reorder(graph));
    EXPECT_NE(pa, c.reorder(graph));
}

TEST(DegreeSort, DescendingByDegree)
{
    Graph graph = makeStar(10); // centre 0 has max degree
    DegreeSort ra(Direction::Out, /*descending=*/true);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    EXPECT_EQ(p.newId(0), 0u); // hub first
    // All leaves keep relative order (stable sort).
    for (VertexId v = 1; v < 9; ++v)
        EXPECT_LT(p.newId(v), p.newId(v + 1));
}

TEST(DegreeSort, Ascending)
{
    Graph graph = makeStar(10);
    DegreeSort ra(Direction::Out, /*descending=*/false);
    Permutation p = ra.reorder(graph);
    EXPECT_EQ(p.newId(0), 9u); // hub last
}

TEST(DegreeSort, NewIdOrderMatchesDegreeOrder)
{
    Graph graph = generateErdosRenyi(300, 3000, 3);
    DegreeSort ra(Direction::In, true);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    Permutation inv = p.inverse();
    for (VertexId pos = 1; pos < graph.numVertices(); ++pos) {
        EXPECT_GE(graph.inDegree(inv.newId(pos - 1)),
                  graph.inDegree(inv.newId(pos)));
    }
}

TEST(HubSort, HubsFirstByDegreeRestStable)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    HubSort ra(Direction::Out);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());

    auto hubs = outHubs(graph);
    ASSERT_FALSE(hubs.empty());
    // Every hub is placed before every non-hub.
    double threshold = hubThreshold(graph);
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        bool is_hub =
            static_cast<double>(graph.outDegree(v)) > threshold;
        if (is_hub)
            EXPECT_LT(p.newId(v), hubs.size());
        else
            EXPECT_GE(p.newId(v), hubs.size());
    }
}

TEST(HubCluster, PreservesRelativeOrder)
{
    Graph graph = makeStar(30);
    HubCluster ra(Direction::Out);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    EXPECT_EQ(p.newId(0), 0u);
    for (VertexId v = 1; v + 1 < graph.numVertices(); ++v)
        EXPECT_LT(p.newId(v), p.newId(v + 1));
}

TEST(Baselines, StatsPopulated)
{
    Graph graph = makeGrid(10, 10);
    DegreeSort ra;
    ra.reorder(graph);
    EXPECT_GE(ra.stats().preprocessSeconds, 0.0);
    EXPECT_GT(ra.stats().peakFootprintBytes, 0u);
}

} // namespace
} // namespace gral
