/**
 * @file
 * Tests for Rabbit-Order and its EDR-restricted variant.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "reorder/rabbit_order.h"

namespace gral
{
namespace
{

/** k disjoint cliques of the given size, IDs interleaved so the
 *  initial ordering scatters every community. */
Graph
scatteredCliques(VertexId cliques, VertexId size)
{
    VertexId n = cliques * size;
    std::vector<Edge> edges;
    // Vertex v belongs to clique (v % cliques).
    for (VertexId a = 0; a < n; ++a)
        for (VertexId b = a + 1; b < n; ++b)
            if (a % cliques == b % cliques) {
                edges.push_back({a, b});
                edges.push_back({b, a});
            }
    BuildOptions options;
    options.removeZeroDegree = false;
    return buildGraph(n, edges, options);
}

TEST(RabbitOrder, ValidPermutationOnSmallGraphs)
{
    for (const Graph &graph :
         {makePath(20), makeStar(20), makeGrid(5, 5), makeCycle(9)}) {
        RabbitOrder ra;
        Permutation p = ra.reorder(graph);
        EXPECT_TRUE(p.isValid());
    }
}

TEST(RabbitOrder, EmptyGraph)
{
    Graph graph;
    RabbitOrder ra;
    EXPECT_EQ(ra.reorder(graph).size(), 0u);
}

TEST(RabbitOrder, CliquesBecomeContiguousBlocks)
{
    Graph graph = scatteredCliques(4, 8);
    RabbitOrder ra;
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());

    // All members of one clique must receive a contiguous ID range.
    for (VertexId c = 0; c < 4; ++c) {
        std::vector<VertexId> ids;
        for (VertexId v = 0; v < graph.numVertices(); ++v)
            if (v % 4 == c)
                ids.push_back(p.newId(v));
        std::sort(ids.begin(), ids.end());
        EXPECT_EQ(ids.back() - ids.front() + 1, ids.size())
            << "clique " << c << " not contiguous";
    }
}

TEST(RabbitOrder, DisjointCliquesYieldOneCommunityEach)
{
    Graph graph = scatteredCliques(5, 6);
    RabbitOrder ra;
    ra.reorder(graph);
    EXPECT_EQ(ra.numCommunities(), 5u);
}

TEST(RabbitOrder, Deterministic)
{
    SocialNetworkParams params;
    params.numVertices = 1500;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    RabbitOrder a;
    RabbitOrder b;
    EXPECT_EQ(a.reorder(graph), b.reorder(graph));
}

TEST(RabbitOrder, IsolatedVerticesBecomeSingletons)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(4, edges, options); // 2, 3 isolated
    RabbitOrder ra;
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
    EXPECT_EQ(ra.numCommunities(), 3u); // {0,1}, {2}, {3}
}

TEST(RabbitOrder, MaxCommunitySizeRespected)
{
    Graph graph = scatteredCliques(2, 10);
    RabbitOrderConfig config;
    config.maxCommunitySize = 5;
    RabbitOrder ra(config);
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
    // Communities are capped, so there must be more than 2 of them.
    EXPECT_GT(ra.numCommunities(), 2u);
}

TEST(RabbitOrderEdr, ExcludedVerticesKeepTailOrder)
{
    Graph graph = makeStar(40); // centre degree 39, leaves 1
    RabbitOrderConfig config;
    config.edrLow = 0;
    config.edrHigh = 10; // exclude the hub centre
    RabbitOrder ra(config);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    EXPECT_EQ(ra.name(), "RabbitOrder-EDR");
    // The excluded centre is appended at the very end.
    EXPECT_EQ(p.newId(0), graph.numVertices() - 1);
}

TEST(RabbitOrderEdr, LowCutExcludesLeaves)
{
    Graph graph = makeStar(10);
    RabbitOrderConfig config;
    config.edrLow = 5; // leaves (degree 1) excluded
    RabbitOrder ra(config);
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    // Only the centre participates: it gets ID 0, leaves keep
    // relative order after it.
    EXPECT_EQ(p.newId(0), 0u);
    for (VertexId leaf = 1; leaf + 1 < 10; ++leaf)
        EXPECT_LT(p.newId(leaf), p.newId(leaf + 1));
}

TEST(RabbitOrderEdr, MatchesFullRunWhenRangeCoversAll)
{
    SocialNetworkParams params;
    params.numVertices = 800;
    params.edgesPerVertex = 5;
    Graph graph = generateSocialNetwork(params);

    RabbitOrder full;
    RabbitOrderConfig config;
    config.edrLow = 0;
    config.edrHigh = 1u << 30;
    RabbitOrder restricted(config);
    EXPECT_EQ(full.reorder(graph), restricted.reorder(graph));
}

TEST(RabbitOrder, StatsPopulated)
{
    Graph graph = makeGrid(8, 8);
    RabbitOrder ra;
    ra.reorder(graph);
    EXPECT_GT(ra.stats().peakFootprintBytes, 0u);
}

} // namespace
} // namespace gral
