/**
 * @file
 * Tests for SlashBurn and SlashBurn++.
 */

#include <gtest/gtest.h>

#include "analysis/datasets.h"
#include "graph/builder.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "reorder/order_util.h"
#include "reorder/slashburn.h"

namespace gral
{
namespace
{

TEST(SlashBurn, ValidPermutationOnSmallGraphs)
{
    for (const Graph &graph :
         {makePath(20), makeStar(20), makeGrid(5, 5), makeCycle(9)}) {
        SlashBurn ra;
        Permutation p = ra.reorder(graph);
        EXPECT_TRUE(p.isValid());
        EXPECT_EQ(p.size(), graph.numVertices());
    }
}

TEST(SlashBurn, StarCentreGetsIdZero)
{
    Graph graph = makeStar(100);
    SlashBurn ra;
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());
    // The hub is slashed first and hub-ordering is by degree.
    EXPECT_EQ(p.newId(0), 0u);
}

TEST(SlashBurn, HubsGetLowIdsOnPowerLawGraph)
{
    SocialNetworkParams params;
    params.numVertices = 3000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    SlashBurn ra;
    Permutation p = ra.reorder(graph);
    ASSERT_TRUE(p.isValid());

    // The highest-degree vertex (by SB's own degree definition:
    // distinct undirected neighbours) must land within the first
    // slash (k = 2% of |V|).
    std::vector<EdgeId> undirected = undirectedDegrees(graph);
    VertexId top = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        if (undirected[v] > undirected[top])
            top = v;
    EXPECT_LT(p.newId(top), graph.numVertices() / 50 + 1);
}

TEST(SlashBurn, IterationLogRecorded)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 5;
    Graph graph = generateSocialNetwork(params);
    SlashBurnConfig config;
    config.recordHistograms = true;
    SlashBurn ra(config);
    ra.reorder(graph);
    ASSERT_FALSE(ra.iterationLog().empty());
    EXPECT_EQ(ra.stats().iterations, ra.iterationLog().size());

    // GCC shrinks monotonically (paper Fig. 2 behaviour).
    VertexId previous = graph.numVertices();
    for (const SlashBurnIteration &record : ra.iterationLog()) {
        EXPECT_LE(record.gccVertices, previous);
        previous = record.gccVertices;
        // Histogram sums to the GCC vertex count.
        VertexId total = 0;
        for (VertexId count : record.gccDegreeHistogram)
            total += count;
        EXPECT_EQ(total, record.gccVertices);
    }
}

TEST(SlashBurn, GccMaxDegreeDecays)
{
    // Paper Section VI-A: after a few iterations the GCC loses its
    // power-law hubs.
    SocialNetworkParams params;
    params.numVertices = 3000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    SlashBurn ra;
    ra.reorder(graph);
    const auto &log = ra.iterationLog();
    ASSERT_GE(log.size(), 2u);
    EXPECT_LT(log.back().gccMaxDegree, log.front().gccMaxDegree);
}

TEST(SlashBurnPp, StopsEarlierThanSlashBurn)
{
    SocialNetworkParams params;
    params.numVertices = 3000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);

    SlashBurn sb;
    sb.reorder(graph);

    SlashBurnConfig config;
    config.earlyStop = true;
    SlashBurn sbpp(config);
    Permutation p = sbpp.reorder(graph);

    EXPECT_TRUE(p.isValid());
    EXPECT_LE(sbpp.stats().iterations, sb.stats().iterations);
    EXPECT_EQ(sbpp.name(), "SlashBurn++");
    EXPECT_EQ(sb.name(), "SlashBurn");
}

TEST(SlashBurn, MaxIterationsCap)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 5;
    Graph graph = generateSocialNetwork(params);
    SlashBurnConfig config;
    config.maxIterations = 2;
    SlashBurn ra(config);
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
    EXPECT_LE(ra.stats().iterations, 2u);
}

TEST(SlashBurn, Deterministic)
{
    Graph graph = makeDataset("twtr-s", 0.02);
    SlashBurn a;
    SlashBurn b;
    EXPECT_EQ(a.reorder(graph), b.reorder(graph));
}

TEST(SlashBurn, DisconnectedGraph)
{
    // Two components: SlashBurn must still emit a bijection.
    std::vector<Edge> edges;
    for (VertexId v = 1; v < 20; ++v) {
        edges.push_back({0, v});
        edges.push_back({v, 0});
    }
    for (VertexId v = 21; v < 30; ++v) {
        edges.push_back({20, v});
        edges.push_back({v, 20});
    }
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(30, edges, options);
    SlashBurn ra;
    Permutation p = ra.reorder(graph);
    EXPECT_TRUE(p.isValid());
}

TEST(SlashBurn, TinyGraphsDoNotCrash)
{
    for (VertexId n : {1u, 2u, 3u}) {
        Graph graph = makePath(n);
        SlashBurn ra;
        Permutation p = ra.reorder(graph);
        EXPECT_TRUE(p.isValid());
    }
}

} // namespace
} // namespace gral
