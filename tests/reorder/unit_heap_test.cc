/**
 * @file
 * Tests for the UnitHeap priority structure.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "reorder/unit_heap.h"

namespace gral
{
namespace
{

TEST(UnitHeap, StartsFull)
{
    UnitHeap heap(5);
    EXPECT_EQ(heap.size(), 5u);
    EXPECT_FALSE(heap.empty());
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_TRUE(heap.contains(v));
        EXPECT_EQ(heap.key(v), 0);
    }
}

TEST(UnitHeap, ExtractMaxPicksHighestKey)
{
    UnitHeap heap(4);
    heap.increment(2);
    heap.increment(2);
    heap.increment(1);
    EXPECT_EQ(heap.extractMax(), 2u);
    EXPECT_EQ(heap.extractMax(), 1u);
    EXPECT_EQ(heap.size(), 2u);
}

TEST(UnitHeap, DefaultTieBreakIsAscendingId)
{
    UnitHeap heap(4);
    EXPECT_EQ(heap.extractMax(), 0u);
    EXPECT_EQ(heap.extractMax(), 1u);
}

TEST(UnitHeap, PriorityOrderTieBreak)
{
    std::vector<VertexId> order = {3, 1, 0, 2};
    UnitHeap heap(4, order);
    EXPECT_EQ(heap.extractMax(), 3u);
    EXPECT_EQ(heap.extractMax(), 1u);
    heap.increment(2);
    EXPECT_EQ(heap.extractMax(), 2u);
    EXPECT_EQ(heap.extractMax(), 0u);
    EXPECT_TRUE(heap.empty());
}

TEST(UnitHeap, DecrementFloorsAtZero)
{
    UnitHeap heap(2);
    heap.decrement(0);
    EXPECT_EQ(heap.key(0), 0);
    heap.increment(0);
    heap.decrement(0);
    EXPECT_EQ(heap.key(0), 0);
}

TEST(UnitHeap, IncrementDecrementRoundTrip)
{
    UnitHeap heap(3);
    heap.increment(1);
    heap.increment(1);
    heap.decrement(1);
    EXPECT_EQ(heap.key(1), 1);
    EXPECT_EQ(heap.extractMax(), 1u);
}

TEST(UnitHeap, RemoveSkipsVertex)
{
    UnitHeap heap(3);
    heap.increment(0);
    heap.remove(0);
    EXPECT_FALSE(heap.contains(0));
    EXPECT_EQ(heap.extractMax(), 1u);
    EXPECT_EQ(heap.size(), 1u);
}

TEST(UnitHeap, ExtractedVerticesNotContained)
{
    UnitHeap heap(3);
    VertexId v = heap.extractMax();
    EXPECT_FALSE(heap.contains(v));
}

TEST(UnitHeap, DrainsCompletely)
{
    const VertexId n = 100;
    UnitHeap heap(n);
    std::vector<char> seen(n, 0);
    while (!heap.empty())
        seen[heap.extractMax()] = 1;
    for (VertexId v = 0; v < n; ++v)
        EXPECT_TRUE(seen[v]);
}

TEST(UnitHeap, ManyIncrementsGrowBuckets)
{
    UnitHeap heap(2);
    for (int i = 0; i < 1000; ++i)
        heap.increment(1);
    EXPECT_EQ(heap.key(1), 1000);
    EXPECT_EQ(heap.extractMax(), 1u);
}

TEST(UnitHeap, MaxKeyTracksAfterExtraction)
{
    UnitHeap heap(3);
    heap.increment(0);
    heap.increment(0);
    heap.increment(1);
    EXPECT_EQ(heap.extractMax(), 0u); // key 2
    EXPECT_EQ(heap.extractMax(), 1u); // key 1 found after top decay
    EXPECT_EQ(heap.extractMax(), 2u); // key 0
}

} // namespace
} // namespace gral
