/**
 * @file
 * Tests for the dataset registry (Table I stand-ins).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/datasets.h"
#include "graph/degree.h"
#include "metrics/asymmetricity.h"

namespace gral
{
namespace
{

TEST(Datasets, RegistryMatchesTableOne)
{
    const auto &registry = datasetRegistry();
    EXPECT_EQ(registry.size(), 9u); // Table I has nine datasets
    EXPECT_EQ(registry.front().paperName, "WebBase-2001");
    EXPECT_EQ(registry.back().paperName, "ClueWeb09");
    int social = 0;
    for (const DatasetSpec &spec : registry)
        if (spec.type == GraphType::SocialNetwork)
            ++social;
    EXPECT_EQ(social, 2); // TwtrMpi and Frndstr
}

TEST(Datasets, LookupById)
{
    EXPECT_EQ(datasetSpec("twtr-s").paperName, "Twitter MPI");
    EXPECT_THROW((void)datasetSpec("nope"), std::invalid_argument);
}

TEST(Datasets, TypeNames)
{
    EXPECT_STREQ(toString(GraphType::SocialNetwork), "SN");
    EXPECT_STREQ(toString(GraphType::WebGraph), "WG");
}

TEST(Datasets, GenerationDeterministic)
{
    Graph a = makeDataset("sk-s", 0.05);
    Graph b = makeDataset("sk-s", 0.05);
    EXPECT_EQ(a, b);
}

TEST(Datasets, ScaleChangesSize)
{
    Graph small = makeDataset("webb-s", 0.02);
    Graph larger = makeDataset("webb-s", 0.05);
    EXPECT_LT(small.numVertices(), larger.numVertices());
}

TEST(Datasets, AverageDegreeInBallpark)
{
    for (const std::string &id : {"twtr-s", "sk-s"}) {
        const DatasetSpec &spec = datasetSpec(id);
        Graph graph = makeDataset(spec, 0.2);
        EXPECT_GT(graph.averageDegree(), spec.averageDegree * 0.4)
            << id;
        EXPECT_LT(graph.averageDegree(), spec.averageDegree * 2.0)
            << id;
    }
}

TEST(Datasets, TypesShowExpectedStructure)
{
    Graph social = makeDataset("twtr-s", 0.1);
    Graph web = makeDataset("ukdls-s", 0.1);
    EXPECT_GT(meanAsymmetricity(web), meanAsymmetricity(social));
}

TEST(Datasets, DefaultBenchSubsetValid)
{
    for (const std::string &id : defaultBenchDatasets())
        EXPECT_NO_THROW((void)datasetSpec(id));
}

} // namespace
} // namespace gral
