/**
 * @file
 * Tests for the end-to-end experiment runner.
 */

#include <gtest/gtest.h>

#include "analysis/datasets.h"
#include "analysis/experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace gral
{
namespace
{

ExperimentOptions
tinyOptions()
{
    ExperimentOptions options;
    options.parallel.numThreads = 2;
    options.timingRepeats = 1;
    options.sim.cache.sizeBytes = 64 * 1024;
    options.sim.cache.associativity = 8;
    options.sim.chunkSize = 128;
    return options;
}

TEST(Experiment, ReorderedGraphHelper)
{
    Graph base = makeDataset("twtr-s", 0.02);
    ReorderStats stats;
    Graph relabeled = reorderedGraph(base, "DegreeSort", &stats);
    EXPECT_EQ(relabeled.numEdges(), base.numEdges());
    EXPECT_GE(stats.preprocessSeconds, 0.0);
    // DegreeSort gives new ID 0 to a max-out-degree vertex.
    EXPECT_EQ(relabeled.outDegree(0),
              maxDegree(base, Direction::Out));
}

TEST(Experiment, FullPipelineProducesMetrics)
{
    Graph base = makeDataset("sk-s", 0.02);
    RaExperimentResult result =
        runRaExperiment(base, "Bl", tinyOptions());
    EXPECT_EQ(result.ra, "Bl");
    EXPECT_GT(result.traversalMs, 0.0);
    EXPECT_GT(result.profile.cache.accesses(), 0u);
    EXPECT_GT(result.profile.dataAccesses, 0u);
    EXPECT_GT(result.profile.tlb.accesses(), 0u);
}

TEST(Experiment, SimulationOnlyMode)
{
    Graph base = makeDataset("twtr-s", 0.015);
    ExperimentOptions options = tinyOptions();
    options.runTiming = false;
    RaExperimentResult result =
        runRaExperiment(base, "Random", options);
    EXPECT_DOUBLE_EQ(result.traversalMs, 0.0);
    EXPECT_GT(result.profile.dataAccesses, 0u);
}

TEST(Experiment, TimingOnlyMode)
{
    Graph base = makeDataset("twtr-s", 0.015);
    ExperimentOptions options = tinyOptions();
    options.runSimulation = false;
    RaExperimentResult result = runRaExperiment(base, "Bl", options);
    EXPECT_GT(result.traversalMs, 0.0);
    EXPECT_EQ(result.profile.dataAccesses, 0u);
}

TEST(Experiment, CollectsTraversalDetailAndPselSamples)
{
    Graph base = makeDataset("sk-s", 0.02);
    ExperimentOptions options = tinyOptions();
    options.sim.pselSampleEvery = 256;
    RaExperimentResult result =
        runRaExperiment(base, "Bl", options);

    // Per-thread breakdown of the best timed run.
    ASSERT_EQ(result.traversal.idlePercentPerThread.size(), 2u);
    ASSERT_EQ(result.traversal.stealsPerThread.size(), 2u);
    ASSERT_EQ(result.traversal.tasksPerThread.size(), 2u);
    EXPECT_GE(result.traversal.maxIdlePercent(),
              result.idlePercent - 1e-9);

    // DRRIP dueling trajectory was sampled.
    EXPECT_FALSE(result.profile.pselSamples.empty());
    std::uint64_t class_accesses = 0;
    for (const CacheStats &stats : result.profile.classStats)
        class_accesses += stats.accesses();
    EXPECT_EQ(class_accesses, result.profile.cache.accesses());
}

TEST(Experiment, RecordedMetricsExportAsValidJson)
{
    Graph base = makeDataset("twtr-s", 0.02);
    ExperimentOptions options = tinyOptions();
    options.sim.pselSampleEvery = 256;
    RaExperimentResult result =
        runRaExperiment(base, "DegreeSort", options);
    recordExperimentMetrics(result);

    MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    EXPECT_TRUE(snapshot.gauges.contains(
        "experiment/DegreeSort/traversal_ms"));
    EXPECT_TRUE(snapshot.gauges.contains(
        "experiment/DegreeSort/l3_miss_rate"));
    EXPECT_TRUE(snapshot.histograms.contains(
        "experiment/DegreeSort/thread_idle_percent"));
    EXPECT_TRUE(snapshot.series.contains(
        "experiment/DegreeSort/psel"));
    EXPECT_FALSE(
        snapshot.series.at("experiment/DegreeSort/psel").empty());

    std::string json = snapshot.toJson();
    std::string error;
    EXPECT_TRUE(jsonValidate(json, &error)) << error;
    EXPECT_NE(json.find("experiment/DegreeSort/psel"),
              std::string::npos);
}

TEST(Experiment, RandomOrderHurtsSimulatedLocality)
{
    // The foundational sanity check behind every bench: shuffling a
    // locality-friendly web graph must increase simulated misses.
    // The scale is chosen so vertex data (8 B x |V|) is several times
    // the 64 KB test cache — otherwise ordering cannot matter.
    Graph base = makeDataset("ukdls-s", 0.5);
    ExperimentOptions options = tinyOptions();
    options.runTiming = false;
    auto baseline = runRaExperiment(base, "Bl", options);
    auto random = runRaExperiment(base, "Random", options);
    EXPECT_GT(random.profile.dataMissRate(),
              baseline.profile.dataMissRate());
}

} // namespace
} // namespace gral
