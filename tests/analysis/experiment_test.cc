/**
 * @file
 * Tests for the end-to-end experiment runner.
 */

#include <gtest/gtest.h>

#include "analysis/datasets.h"
#include "analysis/experiment.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf/backend.h"

namespace gral
{
namespace
{

ExperimentOptions
tinyOptions()
{
    ExperimentOptions options;
    options.parallel.numThreads = 2;
    options.timingRepeats = 1;
    options.sim.cache.sizeBytes = 64 * 1024;
    options.sim.cache.associativity = 8;
    options.sim.chunkSize = 128;
    return options;
}

TEST(Experiment, ReorderedGraphHelper)
{
    Graph base = makeDataset("twtr-s", 0.02);
    ReorderStats stats;
    Graph relabeled = reorderedGraph(base, "DegreeSort", &stats);
    EXPECT_EQ(relabeled.numEdges(), base.numEdges());
    EXPECT_GE(stats.preprocessSeconds, 0.0);
    // DegreeSort gives new ID 0 to a max-out-degree vertex.
    EXPECT_EQ(relabeled.outDegree(0),
              maxDegree(base, Direction::Out));
}

TEST(Experiment, FullPipelineProducesMetrics)
{
    Graph base = makeDataset("sk-s", 0.02);
    RaExperimentResult result =
        runRaExperiment(base, "Bl", tinyOptions());
    EXPECT_EQ(result.ra, "Bl");
    EXPECT_GT(result.traversalMs, 0.0);
    EXPECT_GT(result.profile.cache.accesses(), 0u);
    EXPECT_GT(result.profile.dataAccesses, 0u);
    EXPECT_GT(result.profile.tlb.accesses(), 0u);
}

TEST(Experiment, SimulationOnlyMode)
{
    Graph base = makeDataset("twtr-s", 0.015);
    ExperimentOptions options = tinyOptions();
    options.runTiming = false;
    RaExperimentResult result =
        runRaExperiment(base, "Random", options);
    EXPECT_DOUBLE_EQ(result.traversalMs, 0.0);
    EXPECT_GT(result.profile.dataAccesses, 0u);
}

TEST(Experiment, TimingOnlyMode)
{
    Graph base = makeDataset("twtr-s", 0.015);
    ExperimentOptions options = tinyOptions();
    options.runSimulation = false;
    RaExperimentResult result = runRaExperiment(base, "Bl", options);
    EXPECT_GT(result.traversalMs, 0.0);
    EXPECT_EQ(result.profile.dataAccesses, 0u);
}

TEST(Experiment, CollectsTraversalDetailAndPselSamples)
{
    Graph base = makeDataset("sk-s", 0.02);
    ExperimentOptions options = tinyOptions();
    options.sim.pselSampleEvery = 256;
    RaExperimentResult result =
        runRaExperiment(base, "Bl", options);

    // Per-thread breakdown of the best timed run.
    ASSERT_EQ(result.traversal.idlePercentPerThread.size(), 2u);
    ASSERT_EQ(result.traversal.stealsPerThread.size(), 2u);
    ASSERT_EQ(result.traversal.tasksPerThread.size(), 2u);
    EXPECT_GE(result.traversal.maxIdlePercent(),
              result.idlePercent - 1e-9);

    // DRRIP dueling trajectory was sampled.
    EXPECT_FALSE(result.profile.pselSamples.empty());
    std::uint64_t class_accesses = 0;
    for (const CacheStats &stats : result.profile.classStats)
        class_accesses += stats.accesses();
    EXPECT_EQ(class_accesses, result.profile.cache.accesses());
}

TEST(Experiment, RecordedMetricsExportAsValidJson)
{
    Graph base = makeDataset("twtr-s", 0.02);
    ExperimentOptions options = tinyOptions();
    options.sim.pselSampleEvery = 256;
    RaExperimentResult result =
        runRaExperiment(base, "DegreeSort", options);
    recordExperimentMetrics(result);

    MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    EXPECT_TRUE(snapshot.gauges.contains(
        "experiment/spmv/DegreeSort/traversal_ms"));
    EXPECT_TRUE(snapshot.gauges.contains(
        "experiment/spmv/DegreeSort/l3_miss_rate"));
    EXPECT_TRUE(snapshot.gauges.contains(
        "experiment/spmv/DegreeSort/pull_hub_miss_rate"));
    EXPECT_TRUE(snapshot.histograms.contains(
        "experiment/spmv/DegreeSort/thread_idle_percent"));
    EXPECT_TRUE(snapshot.series.contains(
        "experiment/spmv/DegreeSort/psel"));
    EXPECT_FALSE(
        snapshot.series.at("experiment/spmv/DegreeSort/psel")
            .empty());

    std::string json = snapshot.toJson();
    std::string error;
    EXPECT_TRUE(jsonValidate(json, &error)) << error;
    EXPECT_NE(json.find("experiment/spmv/DegreeSort/psel"),
              std::string::npos);
}

TEST(Experiment, HwCountersOffByDefault)
{
    Graph base = makeDataset("twtr-s", 0.015);
    RaExperimentResult result =
        runRaExperiment(base, "Bl", tinyOptions());
    // No collection requested: the measured reading is the explicit
    // default-invalid state, never zero-filled fake numbers.
    EXPECT_FALSE(result.hw.valid);
    EXPECT_EQ(result.hw.backend, PerfBackend::Unavailable);
    EXPECT_EQ(result.hw.llcMissRate(), -1.0);
}

TEST(Experiment, HwCountersDegradeExplicitlyWhenPerfIsOff)
{
    // Pin the Unavailable rung: this test must behave identically on
    // a PMU-capable workstation and a locked-down CI runner.
    PerfBackend saved = probePerfBackend();
    forcePerfBackend(PerfBackend::Unavailable);
    bool saved_enabled = hwCountersEnabled();

    ExperimentOptions options = tinyOptions();
    options.hwCounters = true;
    Graph base = makeDataset("twtr-s", 0.015);
    RaExperimentResult result = runRaExperiment(base, "Bl", options);
    EXPECT_FALSE(result.hw.valid);
    EXPECT_EQ(result.hw.llcMissRate(), -1.0);
    // Collection was a scoped window; the process-wide switch is
    // back to its prior state afterwards.
    EXPECT_EQ(hwCountersEnabled(), saved_enabled);

    recordExperimentMetrics(result);
    MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    ASSERT_TRUE(snapshot.gauges.contains(
        "experiment/spmv/Bl/hw_llc_miss_rate"));
    EXPECT_DOUBLE_EQ(
        snapshot.gauges.at("experiment/spmv/Bl/hw_llc_miss_rate"),
        -1.0);
    EXPECT_DOUBLE_EQ(
        snapshot.gauges.at("experiment/spmv/Bl/hw_valid"), 0.0);
    EXPECT_DOUBLE_EQ(
        snapshot.gauges.at("experiment/spmv/Bl/hw_backend"),
        static_cast<double>(PerfBackend::Unavailable));

    forcePerfBackend(saved);
}

TEST(Experiment, HwCountersMeasureSequentialKernelWhenAvailable)
{
    // Whatever rung the host offers, a --hw-counters run must either
    // produce a valid reading on that rung or an explicit invalid
    // one — and always restore the collection switch.
    ExperimentOptions options = tinyOptions();
    options.hwCounters = true;
    options.kernel = "pagerank";
    options.runSimulation = false;
    Graph base = makeDataset("twtr-s", 0.015);
    RaExperimentResult result = runRaExperiment(base, "Bl", options);
    EXPECT_FALSE(hwCountersEnabled());
    if (result.hw.valid) {
        EXPECT_NE(result.hw.backend, PerfBackend::Unavailable);
        EXPECT_FALSE(result.hw.values.empty());
    } else {
        EXPECT_EQ(result.hw.llcMissRate(), -1.0);
    }
}

TEST(Experiment, KernelAxisRunsEveryRegisteredKernel)
{
    Graph base = makeDataset("twtr-s", 0.015);
    for (const std::string &kernel : kernelNames()) {
        ExperimentOptions options = tinyOptions();
        options.kernel = kernel;
        options.runTiming = false;
        RaExperimentResult result =
            runRaExperiment(base, "SB", options);
        EXPECT_EQ(result.kernel, kernel);
        EXPECT_GE(result.kernelRun.iterations, 1u) << kernel;
        EXPECT_GT(result.profile.dataAccesses, 0u) << kernel;
        EXPECT_GT(result.profile.cache.accesses(), 0u) << kernel;
        // Acceptance bound: every kernel's trace path streams, so
        // peak resident trace memory is the scheduler's chunk
        // buffer, never the materialized trace.
        EXPECT_LE(result.profile.peakResidentAccesses,
                  options.sim.chunkSize)
            << kernel;
    }
}

TEST(Experiment, KernelTimingUsesRealRuns)
{
    Graph base = makeDataset("twtr-s", 0.015);
    ExperimentOptions options = tinyOptions();
    options.kernel = "cc";
    options.runSimulation = false;
    RaExperimentResult result = runRaExperiment(base, "Bl", options);
    EXPECT_GT(result.traversalMs, 0.0);
    EXPECT_GE(result.kernelRun.iterations, 1u);
}

TEST(Experiment, BfsReportsPerDirectionCounters)
{
    Graph base = makeDataset("sk-s", 0.02);
    ExperimentOptions options = tinyOptions();
    options.kernel = "bfs";
    options.runTiming = false;
    RaExperimentResult result = runRaExperiment(base, "Bl", options);

    const PhaseMissCounters &push = result.profile.pushPhase;
    const PhaseMissCounters &pull = result.profile.pullPhase;
    // Every BFS vertex-data access is direction-tagged.
    EXPECT_EQ(push.dataAccesses + pull.dataAccesses,
              result.profile.dataAccesses);
    EXPECT_GT(push.dataAccesses + pull.dataAccesses, 0u);
    EXPECT_LE(push.hubAccesses, push.dataAccesses);
    EXPECT_LE(pull.hubAccesses, pull.dataAccesses);
    EXPECT_LE(push.hubMisses, push.hubAccesses);
    EXPECT_LE(pull.hubMisses, pull.hubAccesses);
}

TEST(Experiment, UnknownKernelNameThrows)
{
    Graph base = makeDataset("twtr-s", 0.01);
    ExperimentOptions options = tinyOptions();
    options.kernel = "nope";
    EXPECT_THROW(runRaExperiment(base, "Bl", options),
                 std::invalid_argument);
}

TEST(Experiment, RandomOrderHurtsSimulatedLocality)
{
    // The foundational sanity check behind every bench: shuffling a
    // locality-friendly web graph must increase simulated misses.
    // The scale is chosen so vertex data (8 B x |V|) is several times
    // the 64 KB test cache — otherwise ordering cannot matter.
    Graph base = makeDataset("ukdls-s", 0.5);
    ExperimentOptions options = tinyOptions();
    options.runTiming = false;
    auto baseline = runRaExperiment(base, "Bl", options);
    auto random = runRaExperiment(base, "Random", options);
    EXPECT_GT(random.profile.dataMissRate(),
              baseline.profile.dataMissRate());
}

} // namespace
} // namespace gral
