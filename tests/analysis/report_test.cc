/**
 * @file
 * Tests for text-table and number formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"

namespace gral
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable table({"Name", "Value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "22"});
    std::ostringstream out;
    table.print(out);
    std::string text = out.str();
    EXPECT_NE(text.find("Name"), std::string::npos);
    EXPECT_NE(text.find("long-name"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty)
{
    TextTable table({"A", "B", "C"});
    table.addRow({"x"});
    std::ostringstream out;
    table.print(out);
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(TextTable, CsvEscaping)
{
    TextTable table({"A", "B"});
    table.addRow({"plain", "has,comma"});
    table.addRow({"has\"quote", "x"});
    std::ostringstream out;
    table.printCsv(out);
    std::string text = out.str();
    EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, Doubles)
{
    EXPECT_EQ(formatDouble(12.345, 2), "12.35");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(Format, Counts)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KB");
    EXPECT_EQ(formatBytes(3ull << 30), "3.00 GB");
}

TEST(Format, MillionsAndThousands)
{
    EXPECT_EQ(formatMillions(15'700'000), "15.7");
    EXPECT_EQ(formatThousands(4'700), "4.7");
}

} // namespace
} // namespace gral
