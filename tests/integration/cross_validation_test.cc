/**
 * @file
 * Cross-validation tests: independent implementations checking each
 * other, end-to-end pipeline invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>

#include "analysis/datasets.h"
#include "graph/builder.h"
#include "analysis/experiment.h"
#include "cachesim/cache.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/rng.h"
#include "metrics/aid.h"
#include "metrics/ecs.h"
#include "metrics/miss_rate.h"
#include "metrics/reuse_distance.h"
#include "spmv/ihtl.h"
#include "spmv/spmv.h"
#include "spmv/trace_gen.h"

namespace gral
{
namespace
{

TEST(CrossValidation, FullyAssocLruMatchesListOracle)
{
    // A 1-set LRU cache must behave exactly like a textbook LRU list.
    const std::uint32_t ways = 64;
    CacheConfig config;
    config.lineBytes = 64;
    config.associativity = ways;
    config.sizeBytes = 64ull * ways; // exactly one set
    config.policy = ReplacementPolicy::LRU;
    Cache cache(config);

    std::list<std::uint64_t> oracle; // front = most recent line
    SplitMix64 rng(77);
    std::uint64_t oracle_hits = 0;
    const int accesses = 20000;
    for (int i = 0; i < accesses; ++i) {
        // Skewed address stream over ~200 lines.
        std::uint64_t line = rng.nextBounded(
            rng.nextBounded(2) ? 48 : 200);
        std::uint64_t addr = line * 64;

        bool cache_hit = cache.access(addr, false);

        auto it = std::find(oracle.begin(), oracle.end(), line);
        bool oracle_hit = it != oracle.end();
        if (oracle_hit) {
            ++oracle_hits;
            oracle.erase(it);
        } else if (oracle.size() == ways) {
            oracle.pop_back();
        }
        oracle.push_front(line);

        ASSERT_EQ(cache_hit, oracle_hit) << "access " << i;
    }
    EXPECT_EQ(cache.stats().hits, oracle_hits);
}

TEST(CrossValidation, ColdMissesAgreeAcrossTools)
{
    // Compulsory misses are policy-independent: an over-sized cache
    // and the reuse-distance analyzer must count the same number.
    Graph graph = generateErdosRenyi(2000, 20000, 13);
    auto traces = generatePullTrace(graph, {});

    CacheConfig config;
    config.sizeBytes = 64ull << 20; // 64 MB: never evicts here
    config.associativity = 16;
    config.policy = ReplacementPolicy::LRU;
    Cache cache(config);
    ReuseDistanceAnalyzer analyzer(64);
    for (const ThreadTrace &trace : traces) {
        for (const MemoryAccess &access : trace) {
            cache.accessRange(access.addr, access.size,
                              access.isWrite);
            analyzer.access(access.addr);
            // accessRange may split a line-crossing access; feed the
            // analyzer the second line too.
            std::uint64_t first = access.addr / 64;
            std::uint64_t last =
                (access.addr + access.size - 1) / 64;
            if (last != first)
                analyzer.access(last * 64);
        }
    }
    EXPECT_EQ(cache.stats().misses, analyzer.coldAccesses());
}

TEST(CrossValidation, ReuseOracleMatchesFullyAssocCacheHitRate)
{
    // hitRateAtCapacity with a power-of-two capacity equals the
    // fully-associative LRU hit rate at that capacity (bucket edges
    // align exactly with the capacity).
    const std::uint64_t capacity = 256;
    Graph graph = generateErdosRenyi(1000, 8000, 3);
    TraceOptions options;
    options.traceOffsets = false;
    options.traceEdges = false;
    auto traces = generatePullTrace(graph, options);

    CacheConfig config;
    config.lineBytes = 64;
    config.associativity = static_cast<std::uint32_t>(capacity);
    config.sizeBytes = 64ull * capacity; // one set, LRU
    config.policy = ReplacementPolicy::LRU;
    Cache cache(config);
    ReuseDistanceAnalyzer analyzer(64);
    for (const ThreadTrace &trace : traces) {
        for (const MemoryAccess &access : trace) {
            cache.access(access.addr, access.isWrite);
            analyzer.access(access.addr);
        }
    }
    double cache_rate =
        static_cast<double>(cache.stats().hits) /
        static_cast<double>(cache.stats().accesses());
    // Distances in [capacity/2, capacity) are counted as hits by the
    // bucketed oracle's bucket [128,256); distances exactly equal to
    // bucket edges align, so the rates agree to bucket resolution.
    EXPECT_NEAR(analyzer.hitRateAtCapacity(capacity), cache_rate,
                0.02);
}

TEST(CrossValidation, IdentityReorderLeavesEverythingUnchanged)
{
    Graph base = makeDataset("twtr-s", 0.03);
    ExperimentOptions options;
    options.runTiming = false;
    options.sim.cache.sizeBytes = 64 * 1024;
    options.sim.cache.associativity = 8;

    auto a = runRaExperiment(base, "Bl", options);
    Graph same = reorderedGraph(base, "Bl");
    EXPECT_EQ(same, base);
    auto b = runRaExperiment(base, "Bl", options);
    EXPECT_EQ(a.profile.dataMisses, b.profile.dataMisses);
    EXPECT_EQ(a.profile.cache.misses, b.profile.cache.misses);
}

TEST(CrossValidation, PipelineFullyDeterministic)
{
    Graph base = makeDataset("sk-s", 0.03);
    ExperimentOptions options;
    options.runTiming = false;
    options.sim.cache.sizeBytes = 64 * 1024;
    options.sim.cache.associativity = 8;
    for (const char *ra : {"SB", "GO", "RO"}) {
        auto a = runRaExperiment(base, ra, options);
        auto b = runRaExperiment(base, ra, options);
        EXPECT_EQ(a.profile.dataMisses, b.profile.dataMisses) << ra;
        EXPECT_EQ(a.profile.tlb.misses, b.profile.tlb.misses) << ra;
    }
}

TEST(CrossValidation, StreamedReplayIdenticalToMaterialized)
{
    // The tentpole invariant of the streaming pipeline: feeding
    // producers straight into the cache model must be bit-identical
    // to materializing the trace first — same interleaved order, so
    // the same hits, misses, TLB behaviour, and per-degree rows.
    for (const char *id : {"twtr-s", "ukdls-s"}) {
        Graph graph = makeDataset(id, 0.05);
        auto in_deg = degrees(graph, Direction::In);
        auto out_deg = degrees(graph, Direction::Out);
        SimulationOptions sim;
        sim.cache.sizeBytes = 64 * 1024;
        sim.cache.associativity = 8;
        sim.chunkSize = 256;
        sim.missThresholds = {0, 8, 64};

        TraceOptions trace_options;
        auto traces = generatePullTrace(graph, trace_options);
        auto materialized =
            simulateMissProfile(traces, in_deg, out_deg, sim);
        auto streamed = simulateMissProfile(
            makePullProducers(graph, trace_options), in_deg, out_deg,
            sim);

        EXPECT_EQ(streamed.cache.hits, materialized.cache.hits) << id;
        EXPECT_EQ(streamed.cache.misses, materialized.cache.misses)
            << id;
        EXPECT_EQ(streamed.cache.evictions,
                  materialized.cache.evictions)
            << id;
        EXPECT_EQ(streamed.tlb.hits, materialized.tlb.hits) << id;
        EXPECT_EQ(streamed.tlb.misses, materialized.tlb.misses) << id;
        EXPECT_EQ(streamed.dataMisses, materialized.dataMisses) << id;
        EXPECT_EQ(streamed.dataAccesses, materialized.dataAccesses)
            << id;
        EXPECT_EQ(streamed.missesAboveThreshold,
                  materialized.missesAboveThreshold)
            << id;

        // Figure-1 rows must agree bin by bin.
        auto streamed_rows = streamed.perDegree.rows();
        auto materialized_rows = materialized.perDegree.rows();
        ASSERT_EQ(streamed_rows.size(), materialized_rows.size())
            << id;
        for (std::size_t r = 0; r < streamed_rows.size(); ++r) {
            EXPECT_EQ(streamed_rows[r].count,
                      materialized_rows[r].count)
                << id;
            EXPECT_DOUBLE_EQ(streamed_rows[r].sum,
                             materialized_rows[r].sum)
                << id;
        }

        // ECS sees the same interleaved stream too.
        EcsOptions ecs_options;
        ecs_options.cache = sim.cache;
        ecs_options.scanEvery = 4096;
        auto ecs_materialized = effectiveCacheSize(
            traces, trace_options.map, ecs_options);
        auto ecs_streamed = effectiveCacheSize(
            makePullProducers(graph, trace_options),
            trace_options.map, ecs_options);
        EXPECT_EQ(ecs_streamed.scans, ecs_materialized.scans) << id;
        EXPECT_DOUBLE_EQ(ecs_streamed.avgEcsPercent,
                         ecs_materialized.avgEcsPercent)
            << id;

        // And the bound the refactor exists for: streamed replay
        // never holds more than one chunk of trace.
        EXPECT_LE(streamed.peakResidentAccesses, sim.chunkSize) << id;
        EXPECT_GE(materialized.peakResidentAccesses,
                  materialized.totalAccesses)
            << id;
    }
}

TEST(CrossValidation, IhtlProducersMatchMaterializedTrace)
{
    Graph graph = makeDataset("twtr-s", 0.05);
    IhtlGraph ihtl(graph, {});
    TraceOptions trace_options;
    auto in_deg = degrees(graph, Direction::In);
    SimulationOptions sim;
    sim.cache.sizeBytes = 64 * 1024;
    sim.cache.associativity = 8;
    sim.simulateTlb = false;

    auto traces = ihtl.generateTrace(trace_options);
    auto materialized =
        simulateMissProfile(traces, in_deg, in_deg, sim);
    auto streamed = simulateMissProfile(
        ihtl.makeTraceProducers(trace_options), in_deg, in_deg, sim);
    EXPECT_EQ(streamed.cache.hits, materialized.cache.hits);
    EXPECT_EQ(streamed.cache.misses, materialized.cache.misses);
    EXPECT_EQ(streamed.dataMisses, materialized.dataMisses);
    EXPECT_EQ(streamed.dataAccesses, materialized.dataAccesses);
}

TEST(CrossValidation, SpmvLinearity)
{
    // SpMV is linear: pull(a*x + b*y) == a*pull(x) + b*pull(y).
    Graph graph = generateErdosRenyi(300, 2500, 21);
    const VertexId n = graph.numVertices();
    std::vector<double> x(n);
    std::vector<double> y(n);
    SplitMix64 rng(5);
    for (VertexId v = 0; v < n; ++v) {
        x[v] = rng.nextDouble();
        y[v] = rng.nextDouble();
    }
    std::vector<double> combined(n);
    for (VertexId v = 0; v < n; ++v)
        combined[v] = 2.0 * x[v] - 3.0 * y[v];

    std::vector<double> px(n);
    std::vector<double> py(n);
    std::vector<double> pc(n);
    spmvPull(graph, x, px);
    spmvPull(graph, y, py);
    spmvPull(graph, combined, pc);
    for (VertexId v = 0; v < n; ++v)
        EXPECT_NEAR(pc[v], 2.0 * px[v] - 3.0 * py[v], 1e-9);
}

TEST(CrossValidation, AidInvariantUnderSharedShift)
{
    // AID depends only on gaps between neighbour IDs: relabeling
    // that shifts a vertex's whole neighbourhood by a constant
    // leaves its AID unchanged. Construct explicitly.
    std::vector<Edge> edges = {{10, 0}, {14, 0}, {19, 0}};
    BuildOptions build_options;
    build_options.removeZeroDegree = false;
    Graph a = buildGraph(40, edges, build_options);
    std::vector<Edge> shifted = {{30, 0}, {34, 0}, {39, 0}};
    Graph b = buildGraph(40, shifted, build_options);
    EXPECT_DOUBLE_EQ(vertexAid(a.in(), 0), vertexAid(b.in(), 0));
}

} // namespace
} // namespace gral
