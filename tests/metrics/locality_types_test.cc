/**
 * @file
 * Tests for the locality-type classifier (paper Section IV-D).
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "metrics/locality_types.h"

namespace gral
{
namespace
{

Graph
fromEdges(VertexId n, std::vector<Edge> edges)
{
    BuildOptions options;
    options.removeZeroDegree = false;
    return buildGraph(n, edges, options);
}

TEST(LocalityTypes, EmptyGraph)
{
    Graph graph;
    auto summary = classifyLocalityTypes(graph);
    EXPECT_EQ(summary.edges, 0u);
    EXPECT_DOUBLE_EQ(summary.typeI, 0.0);
}

TEST(LocalityTypes, TypeOneAdjacentNeighbours)
{
    // Vertex 0's in-neighbours {1, 2} share a line (8 elems/line);
    // one consecutive pair out of 2 edges -> typeI = 0.5.
    Graph graph = fromEdges(3, {{1, 0}, {2, 0}});
    auto summary = classifyLocalityTypes(graph, Direction::In);
    EXPECT_DOUBLE_EQ(summary.typeI, 0.5);
}

TEST(LocalityTypes, TypeOneFarNeighbours)
{
    Graph graph = fromEdges(101, {{10, 0}, {100, 0}});
    auto summary = classifyLocalityTypes(graph, Direction::In);
    EXPECT_DOUBLE_EQ(summary.typeI, 0.0);
}

TEST(LocalityTypes, TypeTwoSharedNeighbour)
{
    // Vertices 1 and 2 (consecutive) share in-neighbour 50.
    Graph graph = fromEdges(51, {{50, 1}, {50, 2}});
    auto summary = classifyLocalityTypes(graph, Direction::In);
    EXPECT_GT(summary.typeII, 0.0);
}

TEST(LocalityTypes, TypeThreeNearbyDistinctNeighbours)
{
    // Vertices 1 and 2 have distinct in-neighbours 48 and 50 on the
    // same 8-element line.
    Graph graph = fromEdges(51, {{48, 1}, {50, 2}});
    auto summary = classifyLocalityTypes(graph, Direction::In);
    EXPECT_GT(summary.typeIII, 0.0);
    EXPECT_DOUBLE_EQ(summary.typeII, 0.0);
}

TEST(LocalityTypes, WindowExtendsReach)
{
    // Shared neighbour between vertices 1 and 3 (delta 2): only seen
    // with window >= 2.
    Graph graph = fromEdges(51, {{50, 1}, {50, 3}});
    LocalityTypeOptions narrow;
    narrow.window = 1;
    LocalityTypeOptions wide;
    wide.window = 2;
    EXPECT_DOUBLE_EQ(
        classifyLocalityTypes(graph, Direction::In, narrow).typeII,
        0.0);
    EXPECT_GT(
        classifyLocalityTypes(graph, Direction::In, wide).typeII,
        0.0);
}

TEST(LocalityTypes, ShuffleDestroysLocality)
{
    Graph graph = makeGrid(60, 60);
    auto ordered = classifyLocalityTypes(graph, Direction::In);
    Graph shuffled = applyPermutation(
        graph, randomPermutation(graph.numVertices(), 5));
    auto scattered = classifyLocalityTypes(shuffled, Direction::In);
    EXPECT_GT(ordered.typeI + ordered.typeIII,
              2.0 * (scattered.typeI + scattered.typeIII));
}

} // namespace
} // namespace gral
