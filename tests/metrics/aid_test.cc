/**
 * @file
 * Tests for N2N AID (paper Eq. 1) and the average gap profile.
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "metrics/aid.h"
#include "reorder/rabbit_order.h"

namespace gral
{
namespace
{

TEST(Aid, HandComputedExample)
{
    // Vertex 0 has in-neighbours {2, 5, 9}:
    // AID = (|5-2| + |9-5|) / 3 = 7/3.
    std::vector<Edge> edges = {{2, 0}, {5, 0}, {9, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(10, edges, options);
    EXPECT_DOUBLE_EQ(vertexAid(graph.in(), 0), 7.0 / 3.0);
}

TEST(Aid, FewerThanTwoNeighboursIsZero)
{
    std::vector<Edge> edges = {{1, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(3, edges, options);
    EXPECT_DOUBLE_EQ(vertexAid(graph.in(), 0), 0.0);
    EXPECT_DOUBLE_EQ(vertexAid(graph.in(), 2), 0.0);
}

TEST(Aid, ConsecutiveNeighboursGiveSmallAid)
{
    // Neighbours {4, 5, 6}: AID = 2/3.
    std::vector<Edge> edges = {{4, 0}, {5, 0}, {6, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(7, edges, options);
    EXPECT_DOUBLE_EQ(vertexAid(graph.in(), 0), 2.0 / 3.0);
}

TEST(Aid, PaperNonDeterminismExample)
{
    // The paper's caveat: {1600, 3200, 6400} -> {400, 800, 1600}
    // reduces AID though the lines stay distinct.
    std::vector<Edge> a = {{1600, 0}, {3200, 0}, {6400, 0}};
    std::vector<Edge> b = {{400, 0}, {800, 0}, {1600, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph ga = buildGraph(6401, a, options);
    Graph gb = buildGraph(6401, b, options);
    EXPECT_GT(vertexAid(ga.in(), 0), vertexAid(gb.in(), 0));
}

TEST(Aid, AllAidSizes)
{
    Graph graph = makeGrid(4, 4);
    auto values = allAid(graph, Direction::In);
    EXPECT_EQ(values.size(), graph.numVertices());
    for (double value : values)
        EXPECT_GE(value, 0.0);
}

TEST(Aid, DistributionBinsByDegree)
{
    Graph graph = makeStar(100);
    auto dist = aidDegreeDistribution(graph, Direction::In);
    auto rows = dist.rows();
    ASSERT_FALSE(rows.empty());
    // Leaves (degree 1, AID 0) and the centre (degree 99).
    EXPECT_EQ(rows.front().degreeLow, 1u);
    EXPECT_EQ(rows.front().count, 99u);
    EXPECT_EQ(rows.back().count, 1u);
    // Centre neighbours are 1..99: AID = 98/99.
    EXPECT_NEAR(rows.back().mean(), 98.0 / 99.0, 1e-9);
}

TEST(Aid, MeanAidSkipsDegreeUnderTwo)
{
    std::vector<Edge> edges = {{2, 0}, {5, 0}, {9, 0}, {3, 1}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(10, edges, options);
    // Only vertex 0 has >= 2 in-neighbours.
    EXPECT_DOUBLE_EQ(meanAid(graph, Direction::In), 7.0 / 3.0);
}

TEST(Aid, RabbitOrderReducesAidOfClusteredGraph)
{
    // Scattered communities: RO must reduce in-AID (paper Fig. 3,
    // LDV side).
    const VertexId cliques = 10;
    const VertexId size = 12;
    std::vector<Edge> edges;
    for (VertexId a = 0; a < cliques * size; ++a)
        for (VertexId b = 0; b < cliques * size; ++b)
            if (a != b && a % cliques == b % cliques)
                edges.push_back({a, b});
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(cliques * size, edges, options);

    RabbitOrder ra;
    Graph relabeled = applyPermutation(graph, ra.reorder(graph));
    EXPECT_LT(meanAid(relabeled, Direction::In),
              meanAid(graph, Direction::In) / 2.0);
}

TEST(GapProfile, HandComputed)
{
    // Edges (0,3) and (2,1): mean gap = (3 + 1) / 2 = 2.
    std::vector<Edge> edges = {{0, 3}, {2, 1}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(4, edges, options);
    EXPECT_DOUBLE_EQ(averageGapProfile(graph), 2.0);
}

TEST(GapProfile, EmptyGraphIsZero)
{
    Graph graph;
    EXPECT_DOUBLE_EQ(averageGapProfile(graph), 0.0);
}

TEST(GapProfile, AidMeasuresDifferentThingThanGap)
{
    // Neighbours of 0 are {100, 101}: far from 0 (large gap) but
    // adjacent to each other (tiny AID) — the paper's argument for
    // AID over the gap profile.
    std::vector<Edge> edges = {{100, 0}, {101, 0}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(102, edges, options);
    EXPECT_DOUBLE_EQ(vertexAid(graph.in(), 0), 0.5);
    EXPECT_GT(averageGapProfile(graph), 99.0);
}

} // namespace
} // namespace gral
