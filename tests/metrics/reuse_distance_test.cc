/**
 * @file
 * Tests for the exact reuse-distance analyzer.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/reuse_distance.h"

namespace gral
{
namespace
{

TEST(ReuseDistance, RejectsBadLineSize)
{
    EXPECT_THROW(ReuseDistanceAnalyzer{48}, std::invalid_argument);
    EXPECT_THROW(ReuseDistanceAnalyzer{0}, std::invalid_argument);
}

TEST(ReuseDistance, ColdAccessesCounted)
{
    ReuseDistanceAnalyzer analyzer(64);
    analyzer.access(0x0);
    analyzer.access(0x40);
    analyzer.access(0x80);
    EXPECT_EQ(analyzer.coldAccesses(), 3u);
    EXPECT_EQ(analyzer.totalAccesses(), 3u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero)
{
    ReuseDistanceAnalyzer analyzer(64);
    analyzer.access(0x0);
    analyzer.access(0x0);
    ASSERT_FALSE(analyzer.histogram().empty());
    EXPECT_EQ(analyzer.histogram()[0], 1u); // bucket 0: distances 0-1
}

TEST(ReuseDistance, SameLineIsSameAddress)
{
    ReuseDistanceAnalyzer analyzer(64);
    analyzer.access(0x10);
    analyzer.access(0x38); // same 64 B line
    EXPECT_EQ(analyzer.coldAccesses(), 1u);
}

TEST(ReuseDistance, KnownStackDistances)
{
    // Sequence A B C A: the reuse of A skips {B, C} -> distance 2
    // -> bucket 1 ([2,4)).
    ReuseDistanceAnalyzer analyzer(64);
    analyzer.access(0x000);
    analyzer.access(0x040);
    analyzer.access(0x080);
    analyzer.access(0x000);
    const auto &histogram = analyzer.histogram();
    ASSERT_GE(histogram.size(), 2u);
    EXPECT_EQ(histogram[1], 1u);
}

TEST(ReuseDistance, RepeatedReuseNotDoubleCounted)
{
    // A B A B A: A's reuses have distance 1 (bucket 0), B's too.
    ReuseDistanceAnalyzer analyzer(64);
    for (int i = 0; i < 5; ++i)
        analyzer.access(i % 2 == 0 ? 0x0 : 0x40);
    EXPECT_EQ(analyzer.coldAccesses(), 2u);
    EXPECT_EQ(analyzer.histogram()[0], 3u);
}

TEST(ReuseDistance, HitRateAtCapacity)
{
    // Cyclic walk over 4 lines: every reuse has stack distance 3.
    ReuseDistanceAnalyzer analyzer(64);
    for (int pass = 0; pass < 10; ++pass)
        for (std::uint64_t line = 0; line < 4; ++line)
            analyzer.access(line * 64);
    // 36 reuses at distance 3 (bucket 1: [2,4)).
    EXPECT_EQ(analyzer.histogram()[1], 36u);
    // A 4-line LRU cache holds them all; 2 lines would not.
    EXPECT_GT(analyzer.hitRateAtCapacity(4), 0.85);
    EXPECT_DOUBLE_EQ(analyzer.hitRateAtCapacity(2), 0.0);
}

TEST(ReuseDistance, LargeTraceGrowsTree)
{
    ReuseDistanceAnalyzer analyzer(64);
    // 20k accesses force several Fenwick rebuilds.
    for (std::uint64_t i = 0; i < 10000; ++i)
        analyzer.access(i * 64);
    for (std::uint64_t i = 0; i < 10000; ++i)
        analyzer.access(i * 64);
    EXPECT_EQ(analyzer.coldAccesses(), 10000u);
    // Every reuse skipped exactly 9999 other lines -> bucket 13
    // ([8192, 16384)).
    ASSERT_GE(analyzer.histogram().size(), 14u);
    EXPECT_EQ(analyzer.histogram()[13], 10000u);
}

} // namespace
} // namespace gral
