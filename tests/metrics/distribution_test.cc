/**
 * @file
 * Tests for the degree-binned accumulator.
 */

#include <gtest/gtest.h>

#include "metrics/distribution.h"

namespace gral
{
namespace
{

TEST(Distribution, EmptyHasNoRows)
{
    DegreeBinnedAccumulator acc;
    EXPECT_TRUE(acc.rows().empty());
    EXPECT_EQ(acc.totalCount(), 0u);
    EXPECT_DOUBLE_EQ(acc.overallMean(), 0.0);
}

TEST(Distribution, SingleSample)
{
    DegreeBinnedAccumulator acc;
    acc.add(7, 0.5);
    auto rows = acc.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].degreeLow, 5u); // bin [5, 10)
    EXPECT_EQ(rows[0].count, 1u);
    EXPECT_DOUBLE_EQ(rows[0].mean(), 0.5);
}

TEST(Distribution, SamplesAggregateWithinBin)
{
    DegreeBinnedAccumulator acc;
    acc.add(10, 1.0);
    acc.add(15, 0.0);
    acc.add(19, 0.5);
    auto rows = acc.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].degreeLow, 10u);
    EXPECT_EQ(rows[0].count, 3u);
    EXPECT_DOUBLE_EQ(rows[0].mean(), 0.5);
}

TEST(Distribution, RowsAscendingSkippingEmpty)
{
    DegreeBinnedAccumulator acc;
    acc.add(1000, 2.0);
    acc.add(1, 1.0);
    auto rows = acc.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].degreeLow, 1u);
    EXPECT_EQ(rows[1].degreeLow, 1000u);
}

TEST(Distribution, WeightedAdd)
{
    DegreeBinnedAccumulator acc;
    acc.add(3, 10.0, 5); // 5 samples summing to 10
    EXPECT_EQ(acc.totalCount(), 5u);
    EXPECT_DOUBLE_EQ(acc.overallMean(), 2.0);
}

TEST(Distribution, OverallMeanSpansBins)
{
    DegreeBinnedAccumulator acc;
    acc.add(1, 0.0);
    acc.add(100, 1.0);
    EXPECT_DOUBLE_EQ(acc.overallMean(), 0.5);
}

TEST(Distribution, DegreeZeroBin)
{
    DegreeBinnedAccumulator acc;
    acc.add(0, 1.0);
    auto rows = acc.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].degreeLow, 0u);
}

} // namespace
} // namespace gral
