/**
 * @file
 * Tests for CCDF, power-law MLE, and degree Gini.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/rng.h"
#include "metrics/degree_distribution.h"

namespace gral
{
namespace
{

TEST(Ccdf, EmptyInput)
{
    std::vector<EdgeId> none;
    EXPECT_TRUE(degreeCcdf(none).empty());
}

TEST(Ccdf, SimpleFractions)
{
    std::vector<EdgeId> degrees = {1, 1, 2, 5, 10};
    auto ccdf = degreeCcdf(degrees);
    ASSERT_GE(ccdf.size(), 4u);
    EXPECT_EQ(ccdf[0].degree, 1u);
    EXPECT_DOUBLE_EQ(ccdf[0].fraction, 1.0); // all >= 1
    EXPECT_EQ(ccdf[1].degree, 2u);
    EXPECT_DOUBLE_EQ(ccdf[1].fraction, 3.0 / 5.0);
    EXPECT_EQ(ccdf[2].degree, 5u);
    EXPECT_DOUBLE_EQ(ccdf[2].fraction, 2.0 / 5.0);
    EXPECT_EQ(ccdf[3].degree, 10u);
    EXPECT_DOUBLE_EQ(ccdf[3].fraction, 1.0 / 5.0);
}

TEST(Ccdf, MonotoneNonIncreasing)
{
    Graph graph = generateSocialNetwork({});
    auto ccdf = degreeCcdf(graph, Direction::In);
    for (std::size_t i = 1; i < ccdf.size(); ++i)
        EXPECT_LE(ccdf[i].fraction, ccdf[i - 1].fraction);
}

TEST(PowerLawAlpha, RecoversSyntheticExponent)
{
    // Sample a discrete power law with alpha = 2.5 via inverse
    // transform, then check the MLE lands near it.
    SplitMix64 rng(9);
    std::vector<EdgeId> degrees;
    const double alpha = 2.5;
    for (int i = 0; i < 200000; ++i) {
        double u = rng.nextDouble();
        double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
        // Round to the nearest integer so the d_min - 0.5 offset of
        // the continuous-approximation MLE matches the discretization.
        degrees.push_back(static_cast<EdgeId>(x + 0.5));
    }
    // Estimate in the tail (d >= 3), where the continuous
    // approximation is accurate.
    double estimate = powerLawAlpha(degrees, 3);
    EXPECT_NEAR(estimate, alpha, 0.2);
}

TEST(PowerLawAlpha, TooFewSamplesGivesZero)
{
    std::vector<EdgeId> degrees = {5};
    EXPECT_DOUBLE_EQ(powerLawAlpha(degrees, 1), 0.0);
}

TEST(Gini, UniformDegreesAreZero)
{
    std::vector<EdgeId> degrees(100, 7);
    EXPECT_NEAR(degreeGini(degrees), 0.0, 1e-9);
}

TEST(Gini, ExtremeConcentrationNearOne)
{
    std::vector<EdgeId> degrees(1000, 0);
    degrees[0] = 100000;
    EXPECT_GT(degreeGini(degrees), 0.99);
}

TEST(Gini, SocialNetworkMoreSkewedThanUniformGraph)
{
    Graph social = generateSocialNetwork({});
    Graph uniform = generateErdosRenyi(
        social.numVertices(), social.numEdges(), 4);
    EXPECT_GT(degreeGini(social, Direction::In),
              degreeGini(uniform, Direction::In) + 0.1);
}

TEST(Gini, DegenerateInputs)
{
    std::vector<EdgeId> one = {5};
    EXPECT_DOUBLE_EQ(degreeGini(one), 0.0);
    std::vector<EdgeId> zeros(10, 0);
    EXPECT_DOUBLE_EQ(degreeGini(zeros), 0.0);
}

} // namespace
} // namespace gral
