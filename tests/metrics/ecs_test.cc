/**
 * @file
 * Tests for effective cache size measurement (paper Table V).
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "metrics/ecs.h"
#include "spmv/trace_gen.h"

namespace gral
{
namespace
{

EcsOptions
smallEcs()
{
    EcsOptions options;
    options.cache.sizeBytes = 64 * 1024;
    options.cache.associativity = 8;
    options.scanEvery = 1000;
    options.chunkSize = 64;
    return options;
}

TEST(Ecs, ScansHappen)
{
    Graph graph = generateErdosRenyi(1000, 10000, 4);
    TraceOptions trace_options;
    auto traces = generatePullTrace(graph, trace_options);
    auto result =
        effectiveCacheSize(traces, trace_options.map, smallEcs());
    EXPECT_GT(result.scans, 0u);
    EXPECT_GE(result.avgEcsPercent, 0.0);
    EXPECT_LE(result.avgEcsPercent, 100.0);
}

TEST(Ecs, DataOnlyTraceGivesHighEcs)
{
    Graph graph = generateErdosRenyi(5000, 50000, 5);
    TraceOptions trace_options;
    trace_options.traceOffsets = false;
    trace_options.traceEdges = false;
    auto traces = generatePullTrace(graph, trace_options);
    auto result =
        effectiveCacheSize(traces, trace_options.map, smallEcs());
    // Only vertex-data lines enter the cache (a few sets stay cold,
    // so the share is high but not exactly 100).
    EXPECT_GT(result.avgEcsPercent, 80.0);
    EXPECT_DOUBLE_EQ(result.avgTopologyPercent, 0.0);
}

TEST(Ecs, TopologySharePlusDataShareSane)
{
    Graph graph = generateErdosRenyi(3000, 40000, 6);
    TraceOptions trace_options;
    auto traces = generatePullTrace(graph, trace_options);
    auto result =
        effectiveCacheSize(traces, trace_options.map, smallEcs());
    EXPECT_GT(result.avgTopologyPercent, 0.0);
    EXPECT_LE(result.avgEcsPercent + result.avgTopologyPercent,
              100.0 + 1e-9);
    // The topology stream is large, so the cache is shared.
    EXPECT_LT(result.avgEcsPercent, 100.0);
}

TEST(Ecs, NoScanWhenTraceShorterThanInterval)
{
    Graph graph = makeGrid(4, 4);
    TraceOptions trace_options;
    auto traces = generatePullTrace(graph, trace_options);
    EcsOptions options = smallEcs();
    options.scanEvery = 1u << 30;
    auto result =
        effectiveCacheSize(traces, trace_options.map, options);
    EXPECT_EQ(result.scans, 0u);
    EXPECT_DOUBLE_EQ(result.avgEcsPercent, 0.0);
}

TEST(Ecs, CacheStatsAccumulated)
{
    Graph graph = makeGrid(20, 20);
    TraceOptions trace_options;
    auto traces = generatePullTrace(graph, trace_options);
    auto result =
        effectiveCacheSize(traces, trace_options.map, smallEcs());
    EXPECT_GT(result.cache.accesses(), 0u);
}

TEST(Ecs, StreamingOverloadMatchesVectorOverload)
{
    Graph graph = generateErdosRenyi(1500, 20000, 7);
    TraceOptions trace_options;
    auto traces = generatePullTrace(graph, trace_options);
    auto from_vectors =
        effectiveCacheSize(traces, trace_options.map, smallEcs());
    auto from_stream = effectiveCacheSize(
        makePullProducers(graph, trace_options), trace_options.map,
        smallEcs());
    EXPECT_EQ(from_stream.scans, from_vectors.scans);
    EXPECT_DOUBLE_EQ(from_stream.avgEcsPercent,
                     from_vectors.avgEcsPercent);
    EXPECT_DOUBLE_EQ(from_stream.avgTopologyPercent,
                     from_vectors.avgTopologyPercent);
    EXPECT_EQ(from_stream.cache.hits, from_vectors.cache.hits);
    EXPECT_EQ(from_stream.cache.misses, from_vectors.cache.misses);
    EXPECT_EQ(from_stream.totalAccesses, from_vectors.totalAccesses);
    EXPECT_LE(from_stream.peakResidentAccesses,
              smallEcs().chunkSize);
}

} // namespace
} // namespace gral
