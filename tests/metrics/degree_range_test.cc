/**
 * @file
 * Tests for degree range decomposition (paper Figure 5).
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "metrics/degree_range.h"

namespace gral
{
namespace
{

TEST(DecadeClass, Boundaries)
{
    EXPECT_EQ(decadeClass(0), 0u);
    EXPECT_EQ(decadeClass(1), 0u);
    EXPECT_EQ(decadeClass(10), 0u);
    EXPECT_EQ(decadeClass(11), 1u);
    EXPECT_EQ(decadeClass(100), 1u);
    EXPECT_EQ(decadeClass(101), 2u);
    EXPECT_EQ(decadeClass(1000), 2u);
    EXPECT_EQ(decadeClass(10001), 4u);
}

TEST(DecadeClass, Labels)
{
    EXPECT_EQ(decadeClassLabel(0), "1-10");
    EXPECT_EQ(decadeClassLabel(1), "10-100");
    EXPECT_EQ(decadeClassLabel(2), "100-1K");
    EXPECT_EQ(decadeClassLabel(3), "1K-10K");
    EXPECT_EQ(decadeClassLabel(4), "10K-100K");
    EXPECT_EQ(decadeClassLabel(5), "100K-1M");
    EXPECT_EQ(decadeClassLabel(6), "1M-10M");
}

TEST(DegreeRange, RowsSumToHundred)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    auto result = degreeRangeDecomposition(graph);
    for (std::size_t dst = 0; dst < result.percent.size(); ++dst) {
        if (result.edgesPerClass[dst] == 0)
            continue;
        double sum = 0.0;
        for (double cell : result.percent[dst])
            sum += cell;
        EXPECT_NEAR(sum, 100.0, 1e-6);
    }
}

TEST(DegreeRange, EdgeTotalsMatchGraph)
{
    Graph graph = makeGrid(10, 10);
    auto result = degreeRangeDecomposition(graph);
    EdgeId total = 0;
    for (EdgeId count : result.edgesPerClass)
        total += count;
    EXPECT_EQ(total, graph.numEdges());
}

TEST(DegreeRange, StarGraphPlacement)
{
    // Star on 200: centre in-degree 199 (class 2), leaves in-degree 1
    // (class 0). Leaf in-edges all come from the centre whose
    // out-degree is 199 (class 2).
    Graph graph = makeStar(200);
    auto result = degreeRangeDecomposition(graph);
    ASSERT_GE(result.percent.size(), 3u);
    EXPECT_DOUBLE_EQ(result.percent[0][2], 100.0);
    // Centre's in-edges come from leaves (out-degree 1, class 0).
    EXPECT_DOUBLE_EQ(result.percent[2][0], 100.0);
    EXPECT_EQ(result.edgesPerClass[0], 199u);
    EXPECT_EQ(result.edgesPerClass[2], 199u);
}

TEST(DegreeRange, PaperFigure5Contrast)
{
    // Social networks: hub classes draw many edges from other hubs.
    // Web graphs: every class is dominated by low-degree sources.
    SocialNetworkParams sn;
    sn.numVertices = 4000;
    sn.edgesPerVertex = 8;
    WebGraphParams wg;
    wg.numVertices = 4000;
    Graph social = generateSocialNetwork(sn);
    Graph web = generateWebGraph(wg);

    // Fraction of incoming edges of the top in-degree class that come
    // from sources with out-degree > 100 (class >= 2).
    auto hub_to_hub = [](const Graph &graph) {
        auto result = degreeRangeDecomposition(graph);
        std::size_t top = result.percent.size();
        while (top > 0 && result.edgesPerClass[top - 1] == 0)
            --top;
        if (top == 0)
            return 0.0;
        double high_src = 0.0;
        for (std::size_t src = 2; src < result.percent[top - 1].size();
             ++src)
            high_src += result.percent[top - 1][src];
        return high_src;
    };
    EXPECT_GT(hub_to_hub(social), hub_to_hub(web));
}

} // namespace
} // namespace gral
