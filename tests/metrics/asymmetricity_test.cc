/**
 * @file
 * Tests for the asymmetricity metric (paper Section VII-A).
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "metrics/asymmetricity.h"

namespace gral
{
namespace
{

Graph
fromEdges(VertexId n, std::vector<Edge> edges)
{
    BuildOptions options;
    options.removeZeroDegree = false;
    return buildGraph(n, edges, options);
}

TEST(Asymmetricity, SymmetricPairIsZero)
{
    Graph graph = fromEdges(2, {{0, 1}, {1, 0}});
    EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, 0), 0.0);
    EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, 1), 0.0);
}

TEST(Asymmetricity, OneWayEdgeIsOne)
{
    Graph graph = fromEdges(2, {{0, 1}});
    EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, 1), 1.0);
    // Vertex 0 has no in-neighbours: defined as 0.
    EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, 0), 0.0);
}

TEST(Asymmetricity, MixedFraction)
{
    // In-neighbours of 3: {0, 1, 2}; reciprocated: only 0.
    Graph graph =
        fromEdges(4, {{0, 3}, {3, 0}, {1, 3}, {2, 3}});
    EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, 3), 2.0 / 3.0);
}

TEST(Asymmetricity, AllVector)
{
    Graph graph = fromEdges(3, {{0, 1}, {1, 0}, {2, 0}});
    auto values = allAsymmetricity(graph);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(values[0], 0.5); // in: {1 (recip), 2 (not)}
    EXPECT_DOUBLE_EQ(values[1], 0.0);
    EXPECT_DOUBLE_EQ(values[2], 0.0); // no in-neighbours
}

TEST(Asymmetricity, SymmetricGraphIsZeroEverywhere)
{
    Graph graph = makeGrid(5, 5);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(vertexAsymmetricity(graph, v), 0.0);
    EXPECT_DOUBLE_EQ(meanAsymmetricity(graph), 0.0);
}

TEST(Asymmetricity, DistributionSkipsZeroInDegree)
{
    Graph graph = fromEdges(3, {{0, 1}});
    auto dist = asymmetricityDegreeDistribution(graph);
    // Only vertex 1 (in-degree 1) contributes.
    EXPECT_EQ(dist.totalCount(), 1u);
    EXPECT_DOUBLE_EQ(dist.overallMean(), 1.0);
}

TEST(Asymmetricity, PaperFigure4Contrast)
{
    // Social networks: symmetric in-hubs. Web graphs: asymmetric
    // in-hubs. This is the structural contrast behind Fig. 4.
    SocialNetworkParams sn;
    sn.numVertices = 4000;
    sn.edgesPerVertex = 8;
    WebGraphParams wg;
    wg.numVertices = 4000;
    Graph social = generateSocialNetwork(sn);
    Graph web = generateWebGraph(wg);

    auto hub_mean = [](const Graph &graph) {
        auto dist = asymmetricityDegreeDistribution(graph);
        auto rows = dist.rows();
        // Average over the top third of degree bins (the hub side).
        double sum = 0.0;
        std::uint64_t count = 0;
        for (std::size_t i = rows.size() * 2 / 3; i < rows.size();
             ++i) {
            sum += rows[i].sum;
            count += rows[i].count;
        }
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    };
    EXPECT_LT(hub_mean(social), 0.2);
    EXPECT_GT(hub_mean(web), 0.8);
}

} // namespace
} // namespace gral
