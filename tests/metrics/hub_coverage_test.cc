/**
 * @file
 * Tests for hub edge-coverage curves (paper Figure 6).
 */

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "metrics/hub_coverage.h"

namespace gral
{
namespace
{

TEST(HubCoverage, StarCoveredByOneHub)
{
    Graph graph = makeStar(100);
    auto curve = hubCoverage(graph, {1});
    ASSERT_EQ(curve.size(), 1u);
    // The centre holds half of all edges in each direction.
    EXPECT_NEAR(curve[0].inHubEdgePercent, 50.0, 1e-9);
    EXPECT_NEAR(curve[0].outHubEdgePercent, 50.0, 1e-9);
}

TEST(HubCoverage, FullSweepReachesHundred)
{
    Graph graph = makeGrid(8, 8);
    auto curve = hubCoverage(graph, {graph.numVertices()});
    EXPECT_NEAR(curve[0].inHubEdgePercent, 100.0, 1e-9);
    EXPECT_NEAR(curve[0].outHubEdgePercent, 100.0, 1e-9);
}

TEST(HubCoverage, DefaultSweepIsDecadic)
{
    Graph graph = makeGrid(20, 20);
    auto curve = hubCoverage(graph);
    ASSERT_GE(curve.size(), 3u);
    EXPECT_EQ(curve[0].hubCount, 1u);
    EXPECT_EQ(curve[1].hubCount, 10u);
    EXPECT_EQ(curve[2].hubCount, 100u);
    EXPECT_EQ(curve.back().hubCount, graph.numVertices());
}

TEST(HubCoverage, MonotoneNonDecreasing)
{
    WebGraphParams params;
    params.numVertices = 3000;
    Graph graph = generateWebGraph(params);
    auto curve = hubCoverage(graph);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].inHubEdgePercent,
                  curve[i - 1].inHubEdgePercent);
        EXPECT_GE(curve[i].outHubEdgePercent,
                  curve[i - 1].outHubEdgePercent);
    }
}

TEST(HubCoverage, ClampsOversizedH)
{
    Graph graph = makePath(10);
    auto curve = hubCoverage(graph, {1000000});
    EXPECT_NEAR(curve[0].inHubEdgePercent, 100.0, 1e-9);
}

TEST(HubCoverage, PaperFigure6Contrast)
{
    // Web graphs: in-hubs cover far more edges than out-hubs.
    // Social networks: the two sides are comparable (hubs symmetric).
    WebGraphParams wg;
    wg.numVertices = 5000;
    Graph web = generateWebGraph(wg);
    SocialNetworkParams sn;
    sn.numVertices = 5000;
    sn.edgesPerVertex = 8;
    Graph social = generateSocialNetwork(sn);

    std::uint64_t h = 100;
    auto web_curve = hubCoverage(web, {h});
    auto social_curve = hubCoverage(social, {h});

    EXPECT_GT(web_curve[0].inHubEdgePercent,
              2.0 * web_curve[0].outHubEdgePercent);
    // Social networks: out-hubs at least as powerful as in-hubs
    // (paper Fig. 6 Twitter: out-hub coverage ~2x in-hub coverage at
    // 100K hubs thanks to aggregator accounts).
    double social_ratio = social_curve[0].inHubEdgePercent /
                          social_curve[0].outHubEdgePercent;
    EXPECT_GT(social_ratio, 0.25);
    EXPECT_LT(social_ratio, 1.1);
}

TEST(HubsForCoverage, FindsMinimalPrefix)
{
    Graph graph = makeStar(100);
    // 50% of edges are covered by the centre alone.
    EXPECT_EQ(hubsForCoverage(graph, Direction::In, 50.0), 1u);
    // 100% needs every leaf as well.
    EXPECT_EQ(hubsForCoverage(graph, Direction::In, 100.0), 100u);
    EXPECT_EQ(hubsForCoverage(graph, Direction::In, 0.0), 0u);
}

} // namespace
} // namespace gral
