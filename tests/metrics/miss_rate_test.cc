/**
 * @file
 * Tests for the simulated miss-rate degree distribution (Figure 1)
 * and threshold miss counting (Table III).
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "metrics/miss_rate.h"
#include "spmv/trace_gen.h"

namespace gral
{
namespace
{

SimulationOptions
smallSim()
{
    SimulationOptions options;
    options.cache.sizeBytes = 64 * 1024; // 64 KB keeps tests honest
    options.cache.associativity = 8;
    options.chunkSize = 64;
    return options;
}

TEST(MissProfile, CountsOnlyDataAccesses)
{
    Graph graph = generateErdosRenyi(500, 4000, 3);
    auto traces = generatePullTrace(graph, {});
    auto reuse = degrees(graph, Direction::Out);
    auto result = simulateMissProfile(traces, reuse, smallSim());
    // Data accesses = |E| loads + |V| stores.
    EXPECT_EQ(result.dataAccesses,
              graph.numEdges() + graph.numVertices());
    // Aggregate cache counters include topology accesses too.
    EXPECT_GT(result.cache.accesses(), result.dataAccesses);
    EXPECT_LE(result.dataMisses, result.dataAccesses);
    EXPECT_GT(result.perDegree.totalCount(), 0u);
}

TEST(MissProfile, TinyGraphFitsInCacheAfterColdMisses)
{
    Graph graph = makeGrid(8, 8); // 64 vertices: data fits anywhere
    auto traces = generatePullTrace(graph, {});
    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions options = smallSim();
    auto result = simulateMissProfile(traces, reuse, options);
    // Vertex data spans 8 lines; every miss beyond compulsory would
    // signal a simulator bug.
    EXPECT_LE(result.dataMisses, 8u + graph.numVertices() / 8 + 2);
}

TEST(MissProfile, RandomOrderWorseThanIdentityOnClusteredGraph)
{
    // A grid in row-major order has excellent neighbour locality;
    // shuffling IDs must raise the simulated miss rate (the premise
    // of the whole paper).
    Graph graph = makeGrid(150, 150);
    auto reuse = degrees(graph, Direction::Out);
    auto traces = generatePullTrace(graph, {});
    auto base = simulateMissProfile(traces, reuse, smallSim());

    Graph shuffled = applyPermutation(
        graph, randomPermutation(graph.numVertices(), 99));
    auto shuffled_reuse = degrees(shuffled, Direction::Out);
    auto shuffled_traces = generatePullTrace(shuffled, {});
    auto worse =
        simulateMissProfile(shuffled_traces, shuffled_reuse,
                            smallSim());

    EXPECT_GT(worse.dataMissRate(), 2.0 * base.dataMissRate());
}

TEST(MissProfile, ThresholdCountsAreMonotone)
{
    SocialNetworkParams params;
    params.numVertices = 3000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    auto traces = generatePullTrace(graph, {});
    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions options = smallSim();
    options.missThresholds = {0, 20, 100, 2000};
    auto result = simulateMissProfile(traces, reuse, options);
    ASSERT_EQ(result.missesAboveThreshold.size(), 4u);
    // Higher thresholds can only reduce the count.
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_LE(result.missesAboveThreshold[i],
                  result.missesAboveThreshold[i - 1]);
    // Threshold 0 counts every data miss of vertices with degree > 0.
    EXPECT_LE(result.missesAboveThreshold[0], result.dataMisses);
}

TEST(MissProfile, PerDegreeMeansAreRates)
{
    Graph graph = generateErdosRenyi(2000, 20000, 8);
    auto traces = generatePullTrace(graph, {});
    auto reuse = degrees(graph, Direction::Out);
    auto result = simulateMissProfile(traces, reuse, smallSim());
    for (const DegreeBinRow &row : result.perDegree.rows()) {
        EXPECT_GE(row.mean(), 0.0);
        EXPECT_LE(row.mean(), 1.0);
    }
}

TEST(MissProfile, StreamingOverloadMatchesVectorOverload)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 6;
    Graph graph = generateSocialNetwork(params);
    auto in_deg = degrees(graph, Direction::In);
    auto out_deg = degrees(graph, Direction::Out);
    SimulationOptions options = smallSim();
    options.missThresholds = {0, 10, 100};

    auto traces = generatePullTrace(graph, {});
    auto from_vectors =
        simulateMissProfile(traces, in_deg, out_deg, options);
    auto from_stream = simulateMissProfile(
        makePullProducers(graph, {}), in_deg, out_deg, options);

    EXPECT_EQ(from_stream.cache.hits, from_vectors.cache.hits);
    EXPECT_EQ(from_stream.cache.misses, from_vectors.cache.misses);
    EXPECT_EQ(from_stream.tlb.hits, from_vectors.tlb.hits);
    EXPECT_EQ(from_stream.tlb.misses, from_vectors.tlb.misses);
    EXPECT_EQ(from_stream.dataMisses, from_vectors.dataMisses);
    EXPECT_EQ(from_stream.dataAccesses, from_vectors.dataAccesses);
    EXPECT_EQ(from_stream.missesAboveThreshold,
              from_vectors.missesAboveThreshold);
    EXPECT_EQ(from_stream.totalAccesses, from_vectors.totalAccesses);
}

TEST(MissProfile, StreamingPeakMemoryBoundedByChunk)
{
    Graph graph = generateErdosRenyi(2000, 30000, 5);
    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions options = smallSim();
    auto result = simulateMissProfile(makePullProducers(graph, {}),
                                      reuse, options);
    EXPECT_GT(result.totalAccesses, 10u * options.chunkSize);
    EXPECT_LE(result.peakResidentAccesses, options.chunkSize);
    // The vector path's peak includes the materialized log.
    auto traces = generatePullTrace(graph, {});
    auto vector_result =
        simulateMissProfile(traces, reuse, options);
    EXPECT_GE(vector_result.peakResidentAccesses,
              vector_result.totalAccesses);
}

// --------------------------------------------- per-phase counters

/** A vertex-data access with an explicit direction tag. */
MemoryAccess
taggedAccess(std::uint64_t addr, VertexId vertex, AccessPhase phase)
{
    MemoryAccess access;
    access.addr = addr;
    access.dataVertex = vertex;
    access.ownerVertex = vertex;
    access.region = AccessRegion::DataOld;
    access.phase = phase;
    return access;
}

TEST(MissProfile, PhaseCountersSplitByTagAndDegreeView)
{
    // v0 is a hub under the push view only, v1 under the pull view
    // only (threshold 3, strictly exceeded).
    std::vector<EdgeId> push_deg = {9, 1};
    std::vector<EdgeId> pull_deg = {1, 9};
    std::vector<EdgeId> plain_deg = {1, 1};

    std::vector<ThreadTrace> traces(1);
    traces[0] = {
        taggedAccess(0, 0, AccessPhase::Push),
        taggedAccess(64, 1, AccessPhase::Push),
        taggedAccess(128, 0, AccessPhase::Pull),
        taggedAccess(192, 1, AccessPhase::Pull),
        taggedAccess(256, 0, AccessPhase::None),
    };

    SimulationOptions options = smallSim();
    options.simulateTlb = false;
    options.hubDegreeThreshold = 3;
    options.pushHubDegrees = push_deg;
    options.pullHubDegrees = pull_deg;
    auto result =
        simulateMissProfile(traces, plain_deg, plain_deg, options);

    // Untagged accesses count toward the aggregate but to neither
    // phase.
    EXPECT_EQ(result.dataAccesses, 5u);
    EXPECT_EQ(result.pushPhase.dataAccesses, 2u);
    EXPECT_EQ(result.pullPhase.dataAccesses, 2u);

    // Hub classification follows the per-phase degree view.
    EXPECT_EQ(result.pushPhase.hubAccesses, 1u); // v0: push_deg 9
    EXPECT_EQ(result.pullPhase.hubAccesses, 1u); // v1: pull_deg 9

    // Distinct cache lines: every access is a compulsory miss, so
    // the phase miss counters are exact.
    EXPECT_EQ(result.pushPhase.dataMisses, 2u);
    EXPECT_EQ(result.pullPhase.dataMisses, 2u);
    EXPECT_EQ(result.pushPhase.hubMisses, 1u);
    EXPECT_EQ(result.pullPhase.hubMisses, 1u);
    EXPECT_DOUBLE_EQ(result.pushPhase.missRate(), 1.0);
    EXPECT_DOUBLE_EQ(result.pushPhase.hubMissRate(), 1.0);

    // Empty phase views fall back to accessed_degrees: under
    // plain_deg (all 1) nothing is a hub, but phase totals remain.
    SimulationOptions fallback = smallSim();
    fallback.simulateTlb = false;
    fallback.hubDegreeThreshold = 3;
    auto no_hubs =
        simulateMissProfile(traces, plain_deg, plain_deg, fallback);
    EXPECT_EQ(no_hubs.pushPhase.dataAccesses, 2u);
    EXPECT_EQ(no_hubs.pushPhase.hubAccesses, 0u);
    EXPECT_EQ(no_hubs.pullPhase.hubAccesses, 0u);

    // Threshold 0 disables hub accounting entirely.
    SimulationOptions disabled = smallSim();
    disabled.simulateTlb = false;
    disabled.pushHubDegrees = push_deg;
    disabled.pullHubDegrees = pull_deg;
    auto off =
        simulateMissProfile(traces, plain_deg, plain_deg, disabled);
    EXPECT_EQ(off.pushPhase.dataAccesses, 2u);
    EXPECT_EQ(off.pushPhase.hubAccesses, 0u);
    EXPECT_EQ(off.pullPhase.hubAccesses, 0u);
}

TEST(MissProfile, TlbCanBeDisabled)
{
    Graph graph = makeGrid(10, 10);
    auto traces = generatePullTrace(graph, {});
    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions options = smallSim();
    options.simulateTlb = false;
    auto result = simulateMissProfile(traces, reuse, options);
    EXPECT_EQ(result.tlb.accesses(), 0u);
    options.simulateTlb = true;
    auto with_tlb = simulateMissProfile(traces, reuse, options);
    EXPECT_GT(with_tlb.tlb.accesses(), 0u);
}

} // namespace
} // namespace gral
