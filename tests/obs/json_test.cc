#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace gral
{
namespace
{

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, EmitsNestedDocument)
{
    JsonWriter writer;
    writer.beginObject()
        .key("name")
        .value("gral")
        .key("count")
        .value(std::uint64_t{42})
        .key("items")
        .beginArray()
        .value(1.5)
        .value(true)
        .valueNull()
        .endArray()
        .endObject();
    std::string text = writer.str();
    EXPECT_EQ(text,
              "{\"name\":\"gral\",\"count\":42,"
              "\"items\":[1.5,true,null]}");
    EXPECT_TRUE(jsonValidate(text));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter writer;
    writer.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .endArray();
    EXPECT_EQ(writer.str(), "[null,null]");
}

TEST(JsonWriter, MisuseThrows)
{
    {
        JsonWriter writer;
        writer.beginObject();
        // Value without a key inside an object.
        EXPECT_THROW(writer.value(1.0), std::logic_error);
    }
    {
        JsonWriter writer;
        writer.beginArray();
        EXPECT_THROW(writer.endObject(), std::logic_error);
    }
    {
        JsonWriter writer;
        writer.beginObject();
        // Unclosed container at render time.
        EXPECT_THROW(writer.str(), std::logic_error);
    }
}

TEST(JsonValidate, AcceptsValidDocuments)
{
    EXPECT_TRUE(jsonValidate("{}"));
    EXPECT_TRUE(jsonValidate("[]"));
    EXPECT_TRUE(jsonValidate("  {\"a\": [1, -2.5e3, \"x\", null, "
                             "true, false]}  "));
    EXPECT_TRUE(jsonValidate("\"lone string\""));
    EXPECT_TRUE(jsonValidate("-0.5"));
}

TEST(JsonValidate, RejectsInvalidDocuments)
{
    std::string error;
    EXPECT_FALSE(jsonValidate("", &error));
    EXPECT_FALSE(jsonValidate("{", &error));
    EXPECT_FALSE(jsonValidate("{\"a\":}", &error));
    EXPECT_FALSE(jsonValidate("[1,]", &error));
    EXPECT_FALSE(jsonValidate("{} trailing", &error));
    EXPECT_FALSE(jsonValidate("{'a': 1}", &error));
    EXPECT_FALSE(jsonValidate("nul", &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonValidate, RejectsExcessiveNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(jsonValidate(deep));
}

} // namespace
} // namespace gral
