#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace gral
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Temp file that cleans up after itself. */
struct TempPath
{
    std::string path;

    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }

    ~TempPath() { std::remove(path.c_str()); }
};

TEST(ExtractObsFlags, StripsKnownFlagsLeavesRest)
{
    LogLevel saved = logLevel();
    std::vector<std::string> args = {
        "experiment",       "--metrics-out=/tmp/m.json", "graph.grf",
        "--log-level=info", "--trace-out=/tmp/t.json",   "Bl,SB"};
    ObsOptions options = extractObsFlags(args);
    EXPECT_EQ(options.metricsPath, "/tmp/m.json");
    EXPECT_EQ(options.tracePath, "/tmp/t.json");
    EXPECT_EQ(logLevel(), LogLevel::info);
    ASSERT_EQ(args.size(), 3u);
    EXPECT_EQ(args[0], "experiment");
    EXPECT_EQ(args[1], "graph.grf");
    EXPECT_EQ(args[2], "Bl,SB");
    setLogLevel(saved);
}

TEST(ExtractObsFlags, NoFlagsIsANoop)
{
    std::vector<std::string> args = {"info", "graph.grf"};
    ObsOptions options = extractObsFlags(args);
    EXPECT_EQ(options.metricsPath, "");
    EXPECT_EQ(options.tracePath, "");
    EXPECT_EQ(args.size(), 2u);
}

TEST(ExtractObsFlags, BadLogLevelThrows)
{
    std::vector<std::string> args = {"--log-level=shouty"};
    EXPECT_THROW(extractObsFlags(args), std::invalid_argument);
}

TEST(ExtractObsFlags, MetricsFormatSelectsOpenMetrics)
{
    std::vector<std::string> args = {
        "--metrics-out=/tmp/m.txt", "--metrics-format=openmetrics"};
    ObsOptions options = extractObsFlags(args);
    EXPECT_EQ(options.metricsFormat, MetricsFormat::OpenMetrics);
    EXPECT_TRUE(args.empty());

    args = {"--metrics-format=json"};
    EXPECT_EQ(extractObsFlags(args).metricsFormat,
              MetricsFormat::Json);
}

TEST(ExtractObsFlags, BadMetricsFormatThrows)
{
    std::vector<std::string> args = {"--metrics-format=xml"};
    EXPECT_THROW(extractObsFlags(args), std::invalid_argument);
}

TEST(WriteObsFiles, MetricsFileIsValidJson)
{
    MetricsRegistry::global().counter("export_test.events").add(3);
    TempPath file("gral_export_metrics.json");
    writeMetricsJsonFile(file.path);

    std::string text = readFile(file.path);
    std::string error;
    EXPECT_TRUE(jsonValidate(text, &error)) << error;
    EXPECT_NE(text.find("export_test.events"), std::string::npos);
}

TEST(WriteObsFiles, TraceFileIsValidChromeJson)
{
    {
        GRAL_SPAN("export_test/span");
    }
    TempPath file("gral_export_trace.json");
    writeChromeTraceFile(file.path);

    std::string text = readFile(file.path);
    std::string error;
    EXPECT_TRUE(jsonValidate(text, &error)) << error;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("export_test/span"), std::string::npos);
}

TEST(WriteObsFiles, OpenMetricsFileIsWellFormed)
{
    MetricsRegistry::global()
        .counter("export_test.om_events")
        .add(7);
    TempPath file("gral_export_metrics.om");
    writeMetricsOpenMetricsFile(file.path);

    std::string text = readFile(file.path);
    EXPECT_NE(text.find("gral_export_test_om_events_total"),
              std::string::npos);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(WriteObsFiles, DispatchesOnMetricsFormat)
{
    MetricsRegistry::global()
        .counter("export_test.fmt_events")
        .add(1);
    TempPath file("gral_export_dispatch.om");
    ObsOptions options;
    options.metricsPath = file.path;
    options.metricsFormat = MetricsFormat::OpenMetrics;
    writeObsFiles(options);
    std::string text = readFile(file.path);
    EXPECT_EQ(text.compare(0, 7, "# TYPE "), 0);
}

TEST(WriteObsFiles, UnwritablePathThrows)
{
    EXPECT_THROW(
        writeMetricsJsonFile("/nonexistent-dir-xyz/metrics.json"),
        std::runtime_error);
    EXPECT_THROW(
        writeChromeTraceFile("/nonexistent-dir-xyz/trace.json"),
        std::runtime_error);
}

TEST(ScopedTimer, AccumulatesAcrossScopes)
{
    // The documented (and now actual) semantics: += into the sink, so
    // repeated scopes add up instead of keeping only the last one.
    double sink = 0.0;
    {
        ScopedTimer timer(sink);
    }
    double after_first = sink;
    EXPECT_GE(after_first, 0.0);
    {
        ScopedTimer timer(sink);
    }
    EXPECT_GE(sink, after_first);

    double preset = 10.0;
    {
        ScopedTimer timer(preset);
    }
    EXPECT_GE(preset, 10.0); // accumulated, not overwritten
}

} // namespace
} // namespace gral
