#include "obs/log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gral
{
namespace
{

/** Capture log output and restore the previous threshold/stream. */
class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = logLevel();
        setLogStream(&captured_);
    }

    void
    TearDown() override
    {
        setLogStream(nullptr);
        setLogLevel(saved_);
    }

    std::string text() const { return captured_.str(); }

    std::ostringstream captured_;
    LogLevel saved_ = LogLevel::warn;
};

TEST_F(LogTest, ParsesLevelNamesCaseInsensitively)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("trace", &ok), LogLevel::trace);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("DEBUG", &ok), LogLevel::debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("Info", &ok), LogLevel::info);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("warning", &ok), LogLevel::warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("none", &ok), LogLevel::off);
    EXPECT_TRUE(ok);
    parseLogLevel("bogus", &ok);
    EXPECT_FALSE(ok);
}

TEST_F(LogTest, ThresholdFiltersLowerLevels)
{
    setLogLevel(LogLevel::warn);
    EXPECT_FALSE(logLevelEnabled(LogLevel::debug));
    EXPECT_FALSE(logLevelEnabled(LogLevel::info));
    EXPECT_TRUE(logLevelEnabled(LogLevel::warn));
    EXPECT_TRUE(logLevelEnabled(LogLevel::error));

    GRAL_LOG(info) << "should not appear";
    EXPECT_EQ(text(), "");
    GRAL_LOG(warn) << "should appear";
    EXPECT_NE(text().find("should appear"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything)
{
    setLogLevel(LogLevel::off);
    GRAL_LOG(error) << "nope";
    EXPECT_EQ(text(), "");
}

TEST_F(LogTest, DisabledOperandsAreNotEvaluated)
{
    setLogLevel(LogLevel::error);
    int evaluations = 0;
    auto touch = [&evaluations] {
        ++evaluations;
        return "x";
    };
    GRAL_LOG(debug) << touch();
    EXPECT_EQ(evaluations, 0);
    GRAL_LOG(error) << touch();
    EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, FormatsLevelLocationAndFields)
{
    setLogLevel(LogLevel::info);
    GRAL_LOG(info) << "reordered" << logField("ra", "SB")
                   << logField("rounds", 7);
    std::string line = text();
    EXPECT_NE(line.find("[INFO]"), std::string::npos);
    EXPECT_NE(line.find("log_test.cc:"), std::string::npos);
    EXPECT_NE(line.find("reordered"), std::string::npos);
    EXPECT_NE(line.find("ra=SB"), std::string::npos);
    EXPECT_NE(line.find("rounds=7"), std::string::npos);
    EXPECT_EQ(line.back(), '\n');
}

TEST_F(LogTest, LevelNamesRoundTrip)
{
    EXPECT_STREQ(toString(LogLevel::trace), "TRACE");
    EXPECT_STREQ(toString(LogLevel::debug), "DEBUG");
    EXPECT_STREQ(toString(LogLevel::info), "INFO");
    EXPECT_STREQ(toString(LogLevel::warn), "WARN");
    EXPECT_STREQ(toString(LogLevel::error), "ERROR");
    EXPECT_STREQ(toString(LogLevel::off), "OFF");
}

} // namespace
} // namespace gral
