#include "obs/span.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace gral
{
namespace
{

/** Fresh global recorder state for every test. */
class SpanTest : public ::testing::Test
{
  protected:
    void SetUp() override { TraceRecorder::global().clear(); }
    void TearDown() override { TraceRecorder::global().clear(); }
};

TEST_F(SpanTest, ScopedSpanEmitsBalancedBeginEnd)
{
    {
        GRAL_SPAN("test/outer");
        {
            GRAL_SPAN("test/inner");
        }
    }
    std::vector<SpanEvent> events = TraceRecorder::global().events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_STREQ(events[0].name, "test/outer");
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_STREQ(events[1].name, "test/inner");
    EXPECT_EQ(events[1].phase, 'B');
    EXPECT_STREQ(events[2].name, "test/inner");
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_STREQ(events[3].name, "test/outer");
    EXPECT_EQ(events[3].phase, 'E');
    // Same thread, non-decreasing timestamps.
    for (const SpanEvent &event : events)
        EXPECT_EQ(event.tid, events[0].tid);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].tsMicros, events[i - 1].tsMicros);
}

TEST_F(SpanTest, SpanFeedsDurationHistogram)
{
    Histogram &hist =
        MetricsRegistry::global().histogram("span/test/hist_feed");
    std::uint64_t before = hist.count();
    {
        GRAL_SPAN("test/hist_feed");
    }
    EXPECT_EQ(hist.count(), before + 1);
}

TEST_F(SpanTest, BalancedUnderConcurrency)
{
    constexpr unsigned kThreads = 8;
    constexpr int kSpansPerThread = 500;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                GRAL_SPAN("test/worker");
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<SpanEvent> events = TraceRecorder::global().events();
    EXPECT_EQ(TraceRecorder::global().droppedEvents(), 0u);
    // Per thread: every B is eventually matched by an E and depth
    // never goes negative.
    std::map<std::uint32_t, int> depth;
    for (const SpanEvent &event : events) {
        depth[event.tid] += event.phase == 'B' ? 1 : -1;
        EXPECT_GE(depth[event.tid], 0);
    }
    for (const auto &[tid, d] : depth)
        EXPECT_EQ(d, 0) << "thread " << tid;
    EXPECT_EQ(events.size(), 2u * kThreads * kSpansPerThread);
}

TEST_F(SpanTest, DropsWhenBufferFullInsteadOfGrowing)
{
    TraceRecorder &recorder = TraceRecorder::global();
    std::size_t capacity = recorder.capacityPerThread();
    for (std::size_t i = 0; i < capacity + 100; ++i)
        recorder.record("test/flood", 'B');
    EXPECT_EQ(recorder.events().size(), capacity);
    EXPECT_EQ(recorder.droppedEvents(), 100u);
    recorder.clear();
    EXPECT_EQ(recorder.events().size(), 0u);
    EXPECT_EQ(recorder.droppedEvents(), 0u);
}

TEST_F(SpanTest, ChromeTraceExportIsValidJson)
{
    {
        GRAL_SPAN("test/export");
        GRAL_SPAN("test/export_sibling");
    }
    std::ostringstream out;
    TraceRecorder::global().writeChromeTrace(out);
    std::string text = out.str();

    std::string error;
    EXPECT_TRUE(jsonValidate(text, &error)) << error << "\n" << text;
    // Chrome trace-event envelope.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(text.find("\"test/export\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\""), std::string::npos);
    EXPECT_NE(text.find("\"tid\""), std::string::npos);
}

TEST_F(SpanTest, CounterSamplesExportAsCounterTracks)
{
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.recordCounter("hw/test/llc_load_misses", 1234.0);
    recorder.recordCounter("hw/test/llc_load_misses", 5678.0);

    std::vector<SpanEvent> events = recorder.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, 'C');
    EXPECT_EQ(events[0].value, 1234.0);

    std::ostringstream out;
    recorder.writeChromeTrace(out);
    std::string text = out.str();
    std::string error;
    EXPECT_TRUE(jsonValidate(text, &error)) << error << "\n" << text;
    // "ph":"C" events carry their sample in args.value — that is
    // what makes the trace viewer draw them as a counter track.
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"value\":1234"),
              std::string::npos);
    EXPECT_NE(text.find("hw/test/llc_load_misses"),
              std::string::npos);
}

TEST_F(SpanTest, CounterSamplesRespectTheBufferCap)
{
    TraceRecorder &recorder = TraceRecorder::global();
    std::size_t capacity = recorder.capacityPerThread();
    for (std::size_t i = 0; i < capacity + 10; ++i)
        recorder.recordCounter("test/flood_counter",
                               static_cast<double>(i));
    EXPECT_EQ(recorder.events().size(), capacity);
    EXPECT_EQ(recorder.droppedEvents(), 10u);
}

TEST_F(SpanTest, ExportWhileRecordingIsSafe)
{
    std::atomic<bool> stop{false};
    std::thread writer([&stop] {
        while (!stop.load()) {
            GRAL_SPAN("test/live");
        }
    });
    for (int i = 0; i < 50; ++i) {
        std::ostringstream out;
        TraceRecorder::global().writeChromeTrace(out);
        std::string error;
        ASSERT_TRUE(jsonValidate(out.str(), &error)) << error;
    }
    stop.store(true);
    writer.join();
}

} // namespace
} // namespace gral
