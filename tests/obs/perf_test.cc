/**
 * @file
 * Perf counter layer: multiplexing-scaling math on deterministic fake
 * readings, backend-override parsing, the explicit Unavailable stub,
 * and GRAL_PERF_SCOPE's degraded behavior. Every test here must pass
 * on a host with no perf access at all — the scaling functions are
 * pure, and the syscall paths are forced onto the Unavailable rung.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf/backend.h"
#include "obs/perf/counters.h"
#include "obs/perf/events.h"
#include "obs/perf/rusage.h"
#include "obs/perf/scope.h"

namespace gral
{
namespace
{

/** Force the Unavailable rung and restore the probe on exit, so
 *  tests never depend on the host's perf capabilities. */
class ForcedUnavailable
{
  public:
    ForcedUnavailable() : previous_(probePerfBackend())
    {
        forcePerfBackend(PerfBackend::Unavailable);
    }
    ~ForcedUnavailable() { forcePerfBackend(previous_); }

  private:
    PerfBackend previous_;
};

// ------------------------------------------------- scaling math

TEST(PerfScaling, FullyScheduledGroupReturnsRaw)
{
    EXPECT_EQ(scaleCounterValue(1000, 500, 500), 1000u);
    // running > enabled (clock skew) must not shrink the value.
    EXPECT_EQ(scaleCounterValue(1000, 500, 600), 1000u);
}

TEST(PerfScaling, NeverScheduledGroupYieldsZero)
{
    EXPECT_EQ(scaleCounterValue(1000, 500, 0), 0u);
}

TEST(PerfScaling, HalfScheduledGroupDoubles)
{
    EXPECT_EQ(scaleCounterValue(1000, 1000, 500), 2000u);
    EXPECT_EQ(scaleCounterValue(300, 900, 300), 900u);
}

TEST(PerfScaling, LargeCountsDoNotOverflow)
{
    // A week of 5 GHz cycles times a 10x multiplexing factor would
    // overflow 64-bit intermediate math; the 128-bit path must not.
    std::uint64_t raw = 3'000'000'000'000'000ull;
    std::uint64_t scaled =
        scaleCounterValue(raw, 10'000'000'000ull, 1'000'000'000ull);
    EXPECT_EQ(scaled, raw * 10);
}

TEST(PerfScaling, ResultClampsAtUint64Max)
{
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(scaleCounterValue(max, 1000, 1), max);
}

TEST(PerfScaling, GroupReadingScalesEachValue)
{
    RawGroupReading raw;
    raw.timeEnabled = 1000;
    raw.timeRunning = 250; // 4x extrapolation
    raw.values = {100, 400, 80, 20, 4};

    PerfGroupReading reading = scaleGroupReading(
        raw, hardwareEventSet(), PerfBackend::Hardware);
    ASSERT_TRUE(reading.valid);
    EXPECT_EQ(reading.backend, PerfBackend::Hardware);
    EXPECT_DOUBLE_EQ(reading.multiplexFraction(), 0.25);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::Cycles), 400.0);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::Instructions),
                     1600.0);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::LlcLoads), 320.0);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::LlcLoadMisses),
                     80.0);
    // miss rate uses scaled values: 80/320.
    EXPECT_DOUBLE_EQ(reading.llcMissRate(), 0.25);
}

TEST(PerfScaling, GroupThatNeverRanIsInvalid)
{
    RawGroupReading raw;
    raw.timeEnabled = 1000;
    raw.timeRunning = 0;
    raw.values = {100, 200, 300, 400, 500};

    PerfGroupReading reading = scaleGroupReading(
        raw, hardwareEventSet(), PerfBackend::Hardware);
    EXPECT_FALSE(reading.valid);
    EXPECT_EQ(reading.value(PerfEventKind::Cycles), -1.0);
    EXPECT_EQ(reading.llcMissRate(), -1.0);
}

TEST(PerfScaling, MissingRawValuesLeaveEventsInvalid)
{
    RawGroupReading raw;
    raw.timeEnabled = 100;
    raw.timeRunning = 100;
    raw.values = {10, 20}; // only cycles + instructions delivered

    PerfGroupReading reading = scaleGroupReading(
        raw, hardwareEventSet(), PerfBackend::Hardware);
    ASSERT_TRUE(reading.valid);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::Cycles), 10.0);
    EXPECT_EQ(reading.value(PerfEventKind::LlcLoads), -1.0);
    EXPECT_EQ(reading.llcMissRate(), -1.0);
}

TEST(PerfScaling, SoftwareRungCannotReportLlcMissRate)
{
    RawGroupReading raw;
    raw.timeEnabled = 100;
    raw.timeRunning = 100;
    raw.values = {1000, 2, 3, 4};

    PerfGroupReading reading = scaleGroupReading(
        raw, softwareEventSet(), PerfBackend::Software);
    ASSERT_TRUE(reading.valid);
    EXPECT_DOUBLE_EQ(reading.value(PerfEventKind::TaskClockNs),
                     1000.0);
    EXPECT_EQ(reading.llcMissRate(), -1.0);
}

TEST(PerfScaling, RatioHandlesZeroDenominator)
{
    RawGroupReading raw;
    raw.timeEnabled = 100;
    raw.timeRunning = 100;
    raw.values = {100, 0, 0, 0, 0};

    PerfGroupReading reading = scaleGroupReading(
        raw, hardwareEventSet(), PerfBackend::Hardware);
    EXPECT_EQ(reading.ratio(PerfEventKind::LlcLoadMisses,
                            PerfEventKind::LlcLoads),
              -1.0);
}

// --------------------------------------------- backend selection

TEST(PerfBackendParse, RecognizesAllSpellings)
{
    PerfBackend backend = PerfBackend::Unavailable;
    EXPECT_TRUE(parsePerfBackendOverride("hw", &backend));
    EXPECT_EQ(backend, PerfBackend::Hardware);
    EXPECT_TRUE(parsePerfBackendOverride("hardware", &backend));
    EXPECT_EQ(backend, PerfBackend::Hardware);
    EXPECT_TRUE(parsePerfBackendOverride("sw", &backend));
    EXPECT_EQ(backend, PerfBackend::Software);
    EXPECT_TRUE(parsePerfBackendOverride("software", &backend));
    EXPECT_EQ(backend, PerfBackend::Software);
    EXPECT_TRUE(parsePerfBackendOverride("off", &backend));
    EXPECT_EQ(backend, PerfBackend::Unavailable);
    EXPECT_TRUE(parsePerfBackendOverride("none", &backend));
    EXPECT_EQ(backend, PerfBackend::Unavailable);
    EXPECT_TRUE(parsePerfBackendOverride("unavailable", &backend));
    EXPECT_EQ(backend, PerfBackend::Unavailable);
}

TEST(PerfBackendParse, RejectsUnknownValues)
{
    PerfBackend backend = PerfBackend::Hardware;
    EXPECT_FALSE(parsePerfBackendOverride("pmu", &backend));
    EXPECT_FALSE(parsePerfBackendOverride("", &backend));
    EXPECT_EQ(backend, PerfBackend::Hardware); // untouched
}

TEST(PerfBackendNames, ToStringIsStable)
{
    EXPECT_STREQ(toString(PerfBackend::Hardware), "hardware");
    EXPECT_STREQ(toString(PerfBackend::Software), "software");
    EXPECT_STREQ(toString(PerfBackend::Unavailable), "unavailable");
}

// ------------------------------------------------- stub backend

TEST(PerfStub, UnavailableGroupReadsExplicitlyInvalid)
{
    ForcedUnavailable forced;
    PerfCounterGroup group;
    EXPECT_FALSE(group.openForThisThread());
    EXPECT_FALSE(group.isOpen());
    EXPECT_EQ(group.backend(), PerfBackend::Unavailable);

    group.start(); // all no-ops, must not crash
    group.stop();
    PerfGroupReading reading = group.readCounters();
    EXPECT_FALSE(reading.valid);
    EXPECT_EQ(reading.backend, PerfBackend::Unavailable);
    EXPECT_TRUE(reading.values.empty());
    EXPECT_EQ(reading.llcMissRate(), -1.0);
}

TEST(PerfStub, ScopeWithCollectionDisabledPublishesNothing)
{
    ForcedUnavailable forced;
    setHwCountersEnabled(false);
    MetricsRegistry &registry = MetricsRegistry::global();
    Counter &regions =
        registry.counter("hw/test/disabled_scope/regions");
    Counter &unavailable =
        registry.counter("hw/test/disabled_scope/unavailable");
    std::uint64_t regions_before = regions.value();
    std::uint64_t unavailable_before = unavailable.value();
    {
        GRAL_PERF_SCOPE("test/disabled_scope");
    }
    EXPECT_EQ(regions.value(), regions_before);
    EXPECT_EQ(unavailable.value(), unavailable_before);
}

TEST(PerfStub, ScopeOnUnavailableHostCountsUnavailable)
{
    ForcedUnavailable forced;
    ScopedHwCounters window(true);
    MetricsRegistry &registry = MetricsRegistry::global();
    Counter &regions =
        registry.counter("hw/test/unavailable_scope/regions");
    Counter &unavailable =
        registry.counter("hw/test/unavailable_scope/unavailable");
    std::uint64_t regions_before = regions.value();
    std::uint64_t unavailable_before = unavailable.value();
    {
        GRAL_PERF_SCOPE("test/unavailable_scope");
    }
    // Explicit degradation: the region is counted as unavailable,
    // never silently published as zeros.
    EXPECT_EQ(regions.value(), regions_before);
    EXPECT_EQ(unavailable.value(), unavailable_before + 1);
}

TEST(PerfStub, ScopedHwCountersRestoresPreviousState)
{
    setHwCountersEnabled(false);
    {
        ScopedHwCounters window(true);
        EXPECT_TRUE(hwCountersEnabled());
        {
            ScopedHwCounters inner(false); // no-op, keeps enabled
            EXPECT_TRUE(hwCountersEnabled());
        }
        EXPECT_TRUE(hwCountersEnabled());
    }
    EXPECT_FALSE(hwCountersEnabled());
}

// ---------------------------------------------------- rusage probe

TEST(Rusage, PeakRssReportsAndNeverShrinks)
{
    std::uint64_t before = peakRssBytes();
    // Any live test process has resident pages; the probe must not
    // report the explicit-failure 0 on a supported host.
    EXPECT_GT(before, 0u);
    // Touch 8 MB so the high-water mark is forced upward, then check
    // monotonicity (the kernel never lowers the mark).
    std::vector<char> ballast(8u << 20, 1);
    volatile char sink = ballast[ballast.size() / 2];
    (void)sink;
    std::uint64_t after = peakRssBytes();
    EXPECT_GE(after, before);
}

// ------------------------------------------------- event catalogue

TEST(PerfEvents, CataloguesAreDisjointAndNamed)
{
    for (const PerfEventSpec &spec : hardwareEventSet()) {
        EXPECT_NE(spec.name, nullptr);
        EXPECT_STREQ(perfEventName(spec.kind), spec.name);
    }
    for (const PerfEventSpec &spec : softwareEventSet()) {
        EXPECT_NE(spec.name, nullptr);
        EXPECT_STREQ(perfEventName(spec.kind), spec.name);
        for (const PerfEventSpec &hw : hardwareEventSet())
            EXPECT_NE(spec.kind, hw.kind);
    }
}

} // namespace
} // namespace gral
