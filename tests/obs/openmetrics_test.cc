/**
 * @file
 * OpenMetrics text exposition: name mangling, the four metric-type
 * mappings, cumulative histogram buckets, and the mandatory # EOF
 * terminator.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/openmetrics.h"

namespace gral
{
namespace
{

bool
containsLine(const std::string &text, const std::string &line)
{
    std::string needle = line + "\n";
    if (text.compare(0, needle.size(), needle) == 0)
        return true;
    return text.find("\n" + needle) != std::string::npos;
}

TEST(OpenMetricsName, MangledToTheGrammar)
{
    EXPECT_EQ(openMetricsName("spmv.pool.steals"),
              "gral_spmv_pool_steals");
    EXPECT_EQ(openMetricsName("experiment/spmv/GO/l3_miss_rate"),
              "gral_experiment_spmv_GO_l3_miss_rate");
    EXPECT_EQ(openMetricsName("hw/spmv/worker/llc_load_misses"),
              "gral_hw_spmv_worker_llc_load_misses");
    // '-' and spaces are outside the grammar.
    EXPECT_EQ(openMetricsName("a-b c"), "gral_a_b_c");
}

TEST(OpenMetrics, CountersGetTotalSuffix)
{
    MetricsSnapshot snapshot;
    snapshot.counters["spmv.pool.steals"] = 42;
    std::string text = toOpenMetrics(snapshot);
    EXPECT_TRUE(containsLine(
        text, "# TYPE gral_spmv_pool_steals counter"));
    EXPECT_TRUE(containsLine(text, "gral_spmv_pool_steals_total 42"));
}

TEST(OpenMetrics, GaugesKeepTheirName)
{
    MetricsSnapshot snapshot;
    snapshot.gauges["experiment/spmv/GO/l3_miss_rate"] = 0.25;
    std::string text = toOpenMetrics(snapshot);
    EXPECT_TRUE(containsLine(
        text,
        "# TYPE gral_experiment_spmv_GO_l3_miss_rate gauge"));
    EXPECT_TRUE(containsLine(
        text, "gral_experiment_spmv_GO_l3_miss_rate 0.25"));
}

TEST(OpenMetrics, HistogramBucketsAreCumulative)
{
    MetricsSnapshot snapshot;
    MetricsSnapshot::HistogramData data;
    data.count = 6;
    data.sum = 100;
    data.buckets = {{1, 2}, {4, 3}, {16, 1}};
    snapshot.histograms["task_micros"] = data;
    std::string text = toOpenMetrics(snapshot);
    EXPECT_TRUE(
        containsLine(text, "# TYPE gral_task_micros histogram"));
    // Per-bucket counts 2/3/1 become cumulative 2/5/6.
    EXPECT_TRUE(
        containsLine(text, "gral_task_micros_bucket{le=\"1\"} 2"));
    EXPECT_TRUE(
        containsLine(text, "gral_task_micros_bucket{le=\"4\"} 5"));
    EXPECT_TRUE(
        containsLine(text, "gral_task_micros_bucket{le=\"16\"} 6"));
    EXPECT_TRUE(containsLine(
        text, "gral_task_micros_bucket{le=\"+Inf\"} 6"));
    EXPECT_TRUE(containsLine(text, "gral_task_micros_sum 100"));
    EXPECT_TRUE(containsLine(text, "gral_task_micros_count 6"));
}

TEST(OpenMetrics, SeriesExportsLastSampleLabeled)
{
    MetricsSnapshot snapshot;
    snapshot.series["psel"] = {{1.0, 10.0}, {2.0, 20.0}};
    snapshot.series["empty"] = {};
    std::string text = toOpenMetrics(snapshot);
    EXPECT_TRUE(containsLine(text, "gral_psel{x=\"2\"} 20"));
    EXPECT_EQ(text.find("gral_empty"), std::string::npos);
}

TEST(OpenMetrics, DocumentEndsWithEof)
{
    MetricsSnapshot empty;
    std::string text = toOpenMetrics(empty);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

} // namespace
} // namespace gral
