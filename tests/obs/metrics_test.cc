#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace gral
{
namespace
{

TEST(Counter, CountsExactlyAcrossThreads)
{
    Counter counter;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                counter.add();
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Sharded relaxed adds must still be exact after the join.
    EXPECT_EQ(counter.value(), kThreads * kPerThread);

    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, AddsArbitraryDeltas)
{
    Counter counter;
    counter.add(7);
    counter.add(35);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, KeepsLastValue)
{
    Gauge gauge;
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(3.25);
    EXPECT_EQ(gauge.value(), 3.25);
    gauge.set(-1.0);
    EXPECT_EQ(gauge.value(), -1.0);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0.0);
}

TEST(Histogram, BucketBoundariesAreLog2)
{
    // Bucket 0 holds the value 0; bucket i>0 covers
    // [2^(i-1), 2^i - 1].
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);

    for (std::size_t i = 1; i < Histogram::kNumBuckets; ++i) {
        std::uint64_t low = Histogram::bucketLowerBound(i);
        EXPECT_EQ(Histogram::bucketOf(low), i) << "bucket " << i;
        std::uint64_t high = Histogram::bucketUpperBound(i);
        EXPECT_EQ(Histogram::bucketOf(high), i) << "bucket " << i;
    }
    EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
}

TEST(Histogram, RecordsCountSumAndBuckets)
{
    Histogram hist;
    hist.record(0);
    hist.record(1);
    hist.record(5);
    hist.record(5);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.sum(), 11u);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(3), 2u); // 5 is in [4, 7]
    EXPECT_DOUBLE_EQ(hist.mean(), 11.0 / 4.0);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
}

TEST(Histogram, ConcurrentRecordsAreExactInTotal)
{
    Histogram hist;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                hist.record(i & 0xff);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(hist.count(), kThreads * kPerThread);
}

TEST(Series, KeepsEverythingUntilCapacity)
{
    Series series(8);
    for (int i = 0; i < 8; ++i)
        series.record(i, 2 * i);
    auto samples = series.samples();
    ASSERT_EQ(samples.size(), 8u);
    EXPECT_EQ(series.keepStride(), 1u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(samples[i].x, i);
        EXPECT_EQ(samples[i].y, 2 * i);
    }
}

TEST(Series, DecimatesOnOverflowAndCoversWholeRange)
{
    Series series(8);
    for (int i = 0; i < 1000; ++i)
        series.record(i, i);
    auto samples = series.samples();
    EXPECT_LE(samples.size(), 8u);
    EXPECT_GE(samples.size(), 2u);
    EXPECT_GT(series.keepStride(), 1u);
    EXPECT_EQ(series.offered(), 1000u);
    // Strictly increasing x and coverage of the early range: the
    // decimation keeps old points instead of sliding a window.
    EXPECT_EQ(samples.front().x, 0.0);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_LT(samples[i - 1].x, samples[i].x);
}

TEST(MetricsRegistry, HandlesAreStableAndSnapshotSees)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("test.count");
    EXPECT_EQ(&counter, &registry.counter("test.count"));
    counter.add(3);
    registry.gauge("test.gauge").set(1.5);
    registry.histogram("test.hist").record(4);
    registry.series("test.series").record(1.0, 2.0);

    MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("test.count"), 3u);
    EXPECT_EQ(snapshot.gauges.at("test.gauge"), 1.5);
    EXPECT_EQ(snapshot.histograms.at("test.hist").count, 1u);
    ASSERT_EQ(snapshot.series.at("test.series").size(), 1u);
    EXPECT_EQ(snapshot.series.at("test.series")[0].y, 2.0);

    registry.reset();
    EXPECT_EQ(counter.value(), 0u); // handle survives the reset
    MetricsSnapshot after = registry.snapshot();
    EXPECT_EQ(after.counters.at("test.count"), 0u);
}

TEST(MetricsRegistry, ConcurrentLookupsAndWritesAreSafe)
{
    MetricsRegistry registry;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            Counter &mine =
                registry.counter("shared." + std::to_string(t % 2));
            for (int i = 0; i < 10000; ++i)
                mine.add();
        });
    }
    for (std::thread &t : threads)
        t.join();
    MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("shared.0") +
                  snapshot.counters.at("shared.1"),
              kThreads * 10000u);
}

TEST(MetricsSnapshot, ToJsonIsValidAndComplete)
{
    MetricsRegistry registry;
    registry.counter("c\"quoted\"").add(1);
    registry.gauge("g").set(0.5);
    registry.histogram("h").record(100);
    registry.series("s").record(1.0, 2.0);

    std::string json = registry.snapshot().toJson();
    std::string error;
    EXPECT_TRUE(jsonValidate(json, &error)) << error << "\n" << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("c\\\"quoted\\\""), std::string::npos);
}

} // namespace
} // namespace gral
