/**
 * @file
 * Tests for the GRAL_CHECK / GRAL_DCHECK invariant macros.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"

namespace gral
{
namespace
{

TEST(Check, PassingCheckIsSilent)
{
    EXPECT_NO_THROW(GRAL_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(GRAL_CHECK(true) << "never evaluated");
}

TEST(Check, FailingCheckThrowsCheckError)
{
    EXPECT_THROW(GRAL_CHECK(1 + 1 == 3), CheckError);
}

TEST(Check, MessageCarriesLocationExpressionAndStream)
{
    try {
        int got = 7;
        GRAL_CHECK(got == 8) << "got " << got << " widgets";
        FAIL() << "check did not fire";
    } catch (const CheckError &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
        EXPECT_NE(what.find("got == 8"), std::string::npos) << what;
        EXPECT_NE(what.find("got 7 widgets"), std::string::npos) << what;
    }
}

TEST(Check, ConditionEvaluatedExactlyOnce)
{
    int evaluations = 0;
    GRAL_CHECK(++evaluations > 0);
    EXPECT_EQ(evaluations, 1);
}

TEST(Check, StreamedArgumentsNotEvaluatedOnSuccess)
{
    int calls = 0;
    auto expensive = [&calls]() {
        ++calls;
        return std::string("detail");
    };
    GRAL_CHECK(true) << expensive();
    EXPECT_EQ(calls, 0);
}

TEST(Check, WorksAsSoleStatementOfUnbracedIf)
{
    // The macro must behave as a single statement: no dangling-else
    // surprises and no statement leaking out of the branch.
    bool reached_else = false;
    if (false)
        GRAL_CHECK(false) << "must not fire";
    else
        reached_else = true;
    EXPECT_TRUE(reached_else);
}

TEST(Check, CheckErrorIsLogicError)
{
    EXPECT_THROW(GRAL_CHECK(false), std::logic_error);
}

#if GRAL_DCHECK_IS_ON
TEST(Dcheck, ActiveInThisBuild)
{
    EXPECT_THROW(GRAL_DCHECK(false), CheckError);
    EXPECT_NO_THROW(GRAL_DCHECK(true) << "fine");
}
#else
TEST(Dcheck, CompiledOutInThisBuild)
{
    int evaluations = 0;
    GRAL_DCHECK(++evaluations > 0) << "never runs";
    EXPECT_EQ(evaluations, 0);
    EXPECT_NO_THROW(GRAL_DCHECK(false));
}
#endif

} // namespace
} // namespace gral
