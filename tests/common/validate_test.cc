/**
 * @file
 * Tests for the structural validators (common/validate.h): corrupted
 * CSR arrays, non-bijective permutations, broken cache geometry, and
 * misordered access streams must each be rejected.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cachesim/access_stream.h"
#include "common/validate.h"
#include "graph/generators.h"

namespace gral
{
namespace
{

std::string
messageOf(const std::function<void()> &action)
{
    try {
        action();
    } catch (const ValidationError &error) {
        return error.what();
    }
    return {};
}

// ---------------------------------------------------------------- CSR

TEST(ValidateCsr, AcceptsWellFormedAdjacency)
{
    Graph graph = generateErdosRenyi(120, 900, 3);
    EXPECT_NO_THROW(validateCsr(graph.out()));
    EXPECT_NO_THROW(validateCsr(graph.in()));
    EXPECT_NO_THROW(validateGraph(graph));
}

TEST(ValidateCsr, AcceptsEmptyAdjacency)
{
    std::vector<EdgeId> offsets{0};
    std::vector<VertexId> edges;
    EXPECT_NO_THROW(validateCsr(offsets, edges));
}

TEST(ValidateCsr, RejectsEmptyOffsetsArray)
{
    std::vector<EdgeId> offsets;
    std::vector<VertexId> edges;
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsNonZeroBase)
{
    std::vector<EdgeId> offsets{1, 2};
    std::vector<VertexId> edges{0, 0};
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsNonMonotoneOffsets)
{
    std::vector<EdgeId> offsets{0, 3, 2, 4};
    std::vector<VertexId> edges{1, 2, 0, 1};
    std::string what = messageOf(
        [&] { validateCsr(offsets, edges, "fixture"); });
    EXPECT_NE(what.find("not monotone"), std::string::npos) << what;
    EXPECT_NE(what.find("fixture"), std::string::npos) << what;
}

TEST(ValidateCsr, RejectsOffsetsEdgeCountMismatch)
{
    std::vector<EdgeId> offsets{0, 1, 3};
    std::vector<VertexId> edges{1};
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsOutOfRangeColumnIndex)
{
    std::vector<EdgeId> offsets{0, 2, 2};
    std::vector<VertexId> edges{1, 9}; // |V| == 2, so 9 is garbage
    std::string what = messageOf([&] { validateCsr(offsets, edges); });
    EXPECT_NE(what.find(">= |V|"), std::string::npos) << what;
}

TEST(ValidateCsr, RejectsUnsortedNeighbourList)
{
    std::vector<EdgeId> offsets{0, 3, 3, 3};
    std::vector<VertexId> edges{2, 0, 1};
    std::string what = messageOf([&] { validateCsr(offsets, edges); });
    EXPECT_NE(what.find("not sorted"), std::string::npos) << what;
}

// -------------------------------------------------------- permutation

TEST(ValidatePermutation, AcceptsIdentityAndShuffle)
{
    EXPECT_NO_THROW(validatePermutation(Permutation::identity(64), 64));
    EXPECT_NO_THROW(
        validatePermutation(randomPermutation(64, 99), 64));
}

TEST(ValidatePermutation, RejectsSizeMismatch)
{
    EXPECT_THROW(validatePermutation(Permutation::identity(10), 11),
                 ValidationError);
}

TEST(ValidatePermutation, RejectsDuplicateNewIds)
{
    Permutation p(std::vector<VertexId>{0, 1, 1, 3});
    std::string what = messageOf(
        [&] { validatePermutation(p, 4, "my-ra"); });
    EXPECT_NE(what.find("not a bijection"), std::string::npos) << what;
    EXPECT_NE(what.find("my-ra"), std::string::npos) << what;
}

TEST(ValidatePermutation, RejectsOutOfRangeNewId)
{
    Permutation p(std::vector<VertexId>{0, 7, 2, 3});
    std::string what = messageOf([&] { validatePermutation(p, 4); });
    EXPECT_NE(what.find("outside [0, 4)"), std::string::npos) << what;
}

// ------------------------------------------------------- cache config

TEST(ValidateCacheConfig, AcceptsThePaperConfigs)
{
    EXPECT_NO_THROW(validateCacheConfig(paperL3Config()));
    EXPECT_NO_THROW(validateCacheConfig(paperL2Config()));
    EXPECT_NO_THROW(validateCacheConfig(paperL1Config()));
}

TEST(ValidateCacheConfig, RejectsNonPowerOfTwoLine)
{
    CacheConfig config;
    config.lineBytes = 48;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsZeroWays)
{
    CacheConfig config;
    config.associativity = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsNonPowerOfTwoSetCount)
{
    CacheConfig config;
    config.sizeBytes = 3 * 1024; // 3 KB / 1-way / 64 B = 48 sets
    config.associativity = 1;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsRrpvWidthOutOfRange)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.associativity = 4;
    config.rrpvBits = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
    config.rrpvBits = 9;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsZeroBrripEpsilonUnderRrip)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.associativity = 4;
    config.brripEpsilon = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
    // ...but LRU never draws from the epsilon counter.
    config.policy = ReplacementPolicy::LRU;
    EXPECT_NO_THROW(validateCacheConfig(config));
}

// ------------------------------------------------------- order check

MemoryAccess
accessAt(std::uint64_t addr, VertexId owner = kInvalidVertex)
{
    MemoryAccess access;
    access.addr = addr;
    access.ownerVertex = owner;
    return access;
}

TEST(OrderCheckSink, AcceptsTheReferenceOrder)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64),
                                        accessAt(128)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    for (const MemoryAccess &access : reference)
        checker.consume(access);
    EXPECT_NO_THROW(checker.finish());
    EXPECT_EQ(collected.size(), reference.size());
}

TEST(OrderCheckSink, RejectsMisorderedStream)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.consume(accessAt(999)), ValidationError);
    // The bad access must not have leaked downstream.
    EXPECT_EQ(collected.size(), 1u);
}

TEST(OrderCheckSink, RejectsSurplusAccesses)
{
    std::vector<MemoryAccess> reference{accessAt(0)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.consume(accessAt(0)), ValidationError);
}

TEST(OrderCheckSink, RejectsTruncatedStream)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.finish(), ValidationError);
}

/** End-to-end wiring: the streaming scheduler's interleaving must
 *  reproduce the reference order bit-for-bit when replayed through an
 *  OrderCheckSink. */
TEST(OrderCheckSink, SchedulerInterleavingMatchesReference)
{
    std::vector<ThreadTrace> traces(3);
    for (std::size_t t = 0; t < traces.size(); ++t)
        for (std::size_t i = 0; i < 10 + t * 3; ++i)
            traces[t].push_back(
                accessAt(t * 10000 + i * 64,
                         static_cast<VertexId>(i)));

    // Reference order: one scheduler materializes the interleaving...
    std::vector<MemoryAccess> reference;
    {
        InterleavingScheduler scheduler(producersFromTraces(traces), 4);
        VectorSink sink(reference);
        scheduler.drainTo(sink);
    }

    // ...a second identical run must replay it exactly.
    std::vector<MemoryAccess> replayed;
    VectorSink inner(replayed);
    OrderCheckSink checker(inner, reference);
    InterleavingScheduler scheduler(producersFromTraces(traces), 4);
    EXPECT_NO_THROW(scheduler.drainTo(checker));
    EXPECT_NO_THROW(checker.finish());
    EXPECT_EQ(replayed.size(), reference.size());
}

} // namespace
} // namespace gral
