/**
 * @file
 * Tests for the work-stealing pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"

namespace gral
{
namespace
{

TEST(WorkStealingPool, RejectsZeroThreads)
{
    EXPECT_THROW(WorkStealingPool{0}, std::invalid_argument);
}

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce)
{
    WorkStealingPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> executed(n);
    PoolStats stats =
        pool.run(n, [&](std::size_t i) { executed[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(executed[i].load(), 1) << "task " << i;
    EXPECT_GE(stats.wallMs, 0.0);
}

TEST(WorkStealingPool, ZeroTasksCompletes)
{
    WorkStealingPool pool(2);
    PoolStats stats = pool.run(0, [](std::size_t) { FAIL(); });
    EXPECT_EQ(stats.idleFraction.size(), 2u);
}

TEST(WorkStealingPool, SingleThreadWorks)
{
    WorkStealingPool pool(1);
    std::atomic<int> count{0};
    pool.run(100, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealingPool, MoreThreadsThanTasks)
{
    WorkStealingPool pool(8);
    std::atomic<int> count{0};
    pool.run(3, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 3);
}

TEST(WorkStealingPool, IdleFractionsInRange)
{
    WorkStealingPool pool(4);
    PoolStats stats = pool.run(64, [](std::size_t i) {
        volatile double x = 0.0;
        for (std::size_t k = 0; k < 1000 * (i % 7 + 1); ++k)
            x = x + 1.0;
    });
    ASSERT_EQ(stats.idleFraction.size(), 4u);
    for (double fraction : stats.idleFraction) {
        EXPECT_GE(fraction, 0.0);
        EXPECT_LE(fraction, 1.0);
    }
    EXPECT_GE(stats.avgIdlePercent(), 0.0);
    EXPECT_LE(stats.avgIdlePercent(), 100.0);
}

TEST(WorkStealingPool, SkewedTasksGetStolen)
{
    // One huge task plus many small ones: with 4 workers somebody
    // must steal (the huge task blocks its owner's queue).
    WorkStealingPool pool(4);
    std::atomic<int> count{0};
    PoolStats stats = pool.run(256, [&](std::size_t i) {
        count++;
        if (i == 0) {
            volatile double x = 0.0;
            for (int k = 0; k < 2000000; ++k)
                x = x + 1.0;
        }
    });
    EXPECT_EQ(count.load(), 256);
    // Steal counter is advisory; on a single-core host steals can
    // legitimately be zero, so only check it is consistent.
    EXPECT_LE(stats.steals, 256u);
}

TEST(PoolStats, AvgIdleOfEmptyIsZero)
{
    PoolStats stats;
    EXPECT_DOUBLE_EQ(stats.avgIdlePercent(), 0.0);
    EXPECT_DOUBLE_EQ(stats.maxIdlePercent(), 0.0);
}

TEST(WorkStealingPool, PerThreadBreakdownSumsToTotals)
{
    WorkStealingPool pool(4);
    const std::size_t n = 500;
    PoolStats stats = pool.run(n, [](std::size_t i) {
        volatile double x = 0.0;
        for (std::size_t k = 0; k < 100 * (i % 5 + 1); ++k)
            x = x + 1.0;
    });

    ASSERT_EQ(stats.stealsPerThread.size(), 4u);
    ASSERT_EQ(stats.tasksPerThread.size(), 4u);
    std::uint64_t steal_sum = 0;
    std::uint64_t task_sum = 0;
    for (unsigned t = 0; t < 4; ++t) {
        steal_sum += stats.stealsPerThread[t];
        task_sum += stats.tasksPerThread[t];
    }
    EXPECT_EQ(steal_sum, stats.steals);
    EXPECT_EQ(task_sum, n);
    EXPECT_GE(stats.maxIdlePercent(), stats.avgIdlePercent());
}

} // namespace
} // namespace gral
