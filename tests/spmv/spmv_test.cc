/**
 * @file
 * Tests for the SpMV kernels, including pull/push equivalence and a
 * dense matrix-vector oracle.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spmv/spmv.h"

namespace gral
{
namespace
{

std::vector<double>
denseOracle(const Graph &graph, const std::vector<double> &src)
{
    // dst[v] = sum over edges (u -> v) of src[u].
    std::vector<double> dst(graph.numVertices(), 0.0);
    for (VertexId u = 0; u < graph.numVertices(); ++u)
        for (VertexId v : graph.outNeighbours(u))
            dst[v] += src[u];
    return dst;
}

TEST(Spmv, PullMatchesHandComputed)
{
    // 0 -> 1, 0 -> 2, 1 -> 2.
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}};
    Graph graph(3, edges);
    std::vector<double> src = {1.0, 2.0, 4.0};
    std::vector<double> dst(3, -1.0);
    spmvPull(graph, src, dst);
    EXPECT_DOUBLE_EQ(dst[0], 0.0);
    EXPECT_DOUBLE_EQ(dst[1], 1.0);
    EXPECT_DOUBLE_EQ(dst[2], 3.0);
}

TEST(Spmv, PushMatchesPull)
{
    Graph graph = generateErdosRenyi(500, 5000, 21);
    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = static_cast<double>(v % 17) + 0.5;
    std::vector<double> pull(graph.numVertices());
    std::vector<double> push(graph.numVertices());
    spmvPull(graph, src, pull);
    spmvPush(graph, src, push);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(pull[v], push[v]) << "vertex " << v;
}

TEST(Spmv, PullMatchesDenseOracle)
{
    Graph graph = generateErdosRenyi(200, 2000, 5);
    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = 1.0 / (1.0 + v);
    std::vector<double> dst(graph.numVertices());
    spmvPull(graph, src, dst);
    std::vector<double> oracle = denseOracle(graph, src);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_NEAR(dst[v], oracle[v], 1e-9);
}

TEST(Spmv, ReadSumDirections)
{
    // In a symmetric graph CSC and CSR read-sums agree.
    Graph graph = makeGrid(6, 6);
    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = static_cast<double>(v);
    std::vector<double> in_sum(graph.numVertices());
    std::vector<double> out_sum(graph.numVertices());
    readSum(graph, Direction::In, src, in_sum);
    readSum(graph, Direction::Out, src, out_sum);
    EXPECT_EQ(in_sum, out_sum);
}

TEST(Spmv, ReadSumAsymmetric)
{
    std::vector<Edge> edges = {{0, 1}};
    Graph graph(2, edges);
    std::vector<double> src = {5.0, 7.0};
    std::vector<double> in_sum(2);
    std::vector<double> out_sum(2);
    readSum(graph, Direction::In, src, in_sum);  // in-nbrs: 1 <- 0
    readSum(graph, Direction::Out, src, out_sum); // out-nbrs: 0 -> 1
    EXPECT_DOUBLE_EQ(in_sum[1], 5.0);
    EXPECT_DOUBLE_EQ(in_sum[0], 0.0);
    EXPECT_DOUBLE_EQ(out_sum[0], 7.0);
    EXPECT_DOUBLE_EQ(out_sum[1], 0.0);
}

TEST(Spmv, RangeMatchesFull)
{
    Graph graph = generateErdosRenyi(100, 800, 9);
    std::vector<double> src(graph.numVertices(), 2.0);
    std::vector<double> full(graph.numVertices());
    std::vector<double> ranged(graph.numVertices(), 0.0);
    spmvPull(graph, src, full);
    spmvPullRange(graph, src, ranged, 0, 50);
    spmvPullRange(graph, src, ranged, 50, graph.numVertices());
    EXPECT_EQ(full, ranged);
}

TEST(Spmv, IterationsConverge)
{
    // On a symmetric connected graph the normalized power iteration
    // stays bounded in (0, 1].
    Graph graph = makeCycle(50);
    std::vector<double> result = spmvIterations(graph, 20);
    for (double value : result) {
        EXPECT_GT(value, 0.0);
        EXPECT_LE(value, 1.0);
    }
}

TEST(Spmv, ZeroIterationsIsAllOnes)
{
    Graph graph = makePath(5);
    std::vector<double> result = spmvIterations(graph, 0);
    for (double value : result)
        EXPECT_DOUBLE_EQ(value, 1.0);
}

} // namespace
} // namespace gral
