/**
 * @file
 * Tests for instrumented-traversal trace generation.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spmv/trace_gen.h"

namespace gral
{
namespace
{

TEST(AddressMap, RegionsClassify)
{
    AddressMap map;
    EXPECT_EQ(map.regionOf(map.offsetsAddr(5)), AccessRegion::Offsets);
    EXPECT_EQ(map.regionOf(map.edgesAddr(5)), AccessRegion::EdgesArr);
    EXPECT_EQ(map.regionOf(map.dataOldAddr(5)), AccessRegion::DataOld);
    EXPECT_EQ(map.regionOf(map.dataNewAddr(5)), AccessRegion::DataNew);
    EXPECT_EQ(map.regionOf(0x42), AccessRegion::Other);
}

TEST(AddressMap, ElementStrides)
{
    AddressMap map;
    EXPECT_EQ(map.offsetsAddr(1) - map.offsetsAddr(0), kOffsetBytes);
    EXPECT_EQ(map.edgesAddr(1) - map.edgesAddr(0), kEdgeBytes);
    EXPECT_EQ(map.dataOldAddr(1) - map.dataOldAddr(0),
              kVertexDataBytes);
}

TEST(PullTrace, AccessCountFormula)
{
    Graph graph = generateErdosRenyi(200, 1500, 6);
    TraceOptions options;
    options.numThreads = 4;
    auto traces = generatePullTrace(graph, options);
    EXPECT_EQ(traces.size(), 4u);
    // Per vertex: 1 offsets load + 1 result store; per edge: 1 edges
    // load + 1 data load.
    std::size_t expected = 2ull * graph.numVertices() +
                           2ull * graph.numEdges();
    EXPECT_EQ(traceAccessCount(traces), expected);
}

TEST(PullTrace, WithoutTopology)
{
    Graph graph = makeGrid(5, 5);
    TraceOptions options;
    options.numThreads = 1;
    options.traceOffsets = false;
    options.traceEdges = false;
    auto traces = generatePullTrace(graph, options);
    EXPECT_EQ(traceAccessCount(traces),
              graph.numVertices() + graph.numEdges());
    for (const MemoryAccess &access : traces[0]) {
        EXPECT_TRUE(access.region == AccessRegion::DataOld ||
                    access.region == AccessRegion::DataNew);
    }
}

TEST(PullTrace, DataVertexTagsMatchNeighbours)
{
    std::vector<Edge> edges = {{0, 1}, {2, 1}};
    Graph graph(3, edges);
    TraceOptions options;
    options.numThreads = 1;
    options.traceOffsets = false;
    options.traceEdges = false;
    auto traces = generatePullTrace(graph, options);
    // Vertex 1's in-neighbours are {0, 2}: its two data loads must be
    // tagged with 0 and 2; each store is tagged with its own vertex.
    std::vector<VertexId> loads;
    std::vector<VertexId> stores;
    for (const MemoryAccess &access : traces[0]) {
        if (access.isWrite)
            stores.push_back(access.dataVertex);
        else
            loads.push_back(access.dataVertex);
    }
    EXPECT_EQ(loads, (std::vector<VertexId>{0, 2}));
    EXPECT_EQ(stores, (std::vector<VertexId>{0, 1, 2}));
}

TEST(PullTrace, LoadsAreReadsStoresAreWrites)
{
    Graph graph = makeStar(20);
    auto traces = generatePullTrace(graph, {});
    for (const ThreadTrace &trace : traces) {
        for (const MemoryAccess &access : trace) {
            if (access.region == AccessRegion::DataNew)
                EXPECT_TRUE(access.isWrite);
            else
                EXPECT_FALSE(access.isWrite);
        }
    }
}

TEST(PushTrace, RandomWritesToOutNeighbours)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}};
    Graph graph(3, edges);
    TraceOptions options;
    options.numThreads = 1;
    options.traceOffsets = false;
    options.traceEdges = false;
    auto traces = generatePushTrace(graph, options);
    // Vertex 0: one sequential DataOld load + writes to 1 and 2.
    std::vector<VertexId> writes;
    for (const MemoryAccess &access : traces[0]) {
        if (access.isWrite) {
            EXPECT_EQ(access.region, AccessRegion::DataNew);
            writes.push_back(access.dataVertex);
        }
    }
    EXPECT_EQ(writes, (std::vector<VertexId>{1, 2}));
}

TEST(PushTrace, AccessCountFormula)
{
    Graph graph = generateErdosRenyi(150, 900, 8);
    TraceOptions options;
    options.numThreads = 2;
    auto traces = generatePushTrace(graph, options);
    // Per vertex: offsets load + own data load; per edge: edges load
    // + destination write.
    std::size_t expected = 2ull * graph.numVertices() +
                           2ull * graph.numEdges();
    EXPECT_EQ(traceAccessCount(traces), expected);
}

TEST(ReadSumTrace, DirectionSelectsAdjacency)
{
    std::vector<Edge> edges = {{0, 1}}; // out-deg(0)=1, in-deg(1)=1
    Graph graph(2, edges);
    TraceOptions options;
    options.numThreads = 1;
    options.traceOffsets = false;
    options.traceEdges = false;

    auto in_traces =
        generateReadSumTrace(graph, Direction::In, options);
    auto out_traces =
        generateReadSumTrace(graph, Direction::Out, options);

    // CSC traversal: vertex 1 loads data of 0.
    // CSR traversal: vertex 0 loads data of 1.
    auto first_load = [](const std::vector<ThreadTrace> &traces) {
        for (const MemoryAccess &access : traces[0])
            if (!access.isWrite)
                return access.dataVertex;
        return kInvalidVertex;
    };
    EXPECT_EQ(first_load(in_traces), 0u);
    EXPECT_EQ(first_load(out_traces), 1u);
}

/** Drain a producer through a buffer of @p step records per poll —
 *  resumability must not depend on where the stream is cut. */
ThreadTrace
drainStepwise(AccessProducer &producer, std::size_t step)
{
    ThreadTrace out;
    std::vector<MemoryAccess> buffer(step);
    std::size_t filled;
    while ((filled = producer.fill(buffer)) > 0)
        out.insert(out.end(), buffer.begin(), buffer.begin() + filled);
    return out;
}

bool
sameAccesses(const ThreadTrace &a, const ThreadTrace &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].addr != b[i].addr || a[i].isWrite != b[i].isWrite ||
            a[i].dataVertex != b[i].dataVertex ||
            a[i].ownerVertex != b[i].ownerVertex ||
            a[i].region != b[i].region || a[i].size != b[i].size)
            return false;
    }
    return true;
}

TEST(Producers, ResumableAtAnyCutPoint)
{
    Graph graph = generateErdosRenyi(120, 700, 11);
    TraceOptions options;
    options.numThreads = 3;
    auto reference = generatePullTrace(graph, options);
    for (std::size_t step : {1u, 2u, 7u, 64u}) {
        auto producers = makePullProducers(graph, options);
        ASSERT_EQ(producers.size(), reference.size());
        for (std::size_t t = 0; t < producers.size(); ++t)
            EXPECT_TRUE(sameAccesses(
                drainStepwise(*producers[t], step), reference[t]))
                << "thread " << t << " step " << step;
    }
}

TEST(Producers, PushAndReadSumMatchMaterialized)
{
    Graph graph = generateErdosRenyi(80, 500, 4);
    TraceOptions options;
    options.numThreads = 2;

    auto push_ref = generatePushTrace(graph, options);
    auto push_producers = makePushProducers(graph, options);
    for (std::size_t t = 0; t < push_producers.size(); ++t)
        EXPECT_TRUE(sameAccesses(drainStepwise(*push_producers[t], 5),
                                 push_ref[t]));

    auto csr_ref =
        generateReadSumTrace(graph, Direction::Out, options);
    auto csr_producers =
        makeReadSumProducers(graph, Direction::Out, options);
    for (std::size_t t = 0; t < csr_producers.size(); ++t)
        EXPECT_TRUE(sameAccesses(drainStepwise(*csr_producers[t], 5),
                                 csr_ref[t]));
}

TEST(Producers, SizeHintIsExact)
{
    Graph graph = generateErdosRenyi(100, 600, 9);
    TraceOptions options;
    options.numThreads = 4;
    auto producers = makePullProducers(graph, options);
    auto traces = generatePullTrace(graph, options);
    EXPECT_EQ(producerSizeHint(producers), traceAccessCount(traces));
    for (std::size_t t = 0; t < producers.size(); ++t)
        EXPECT_EQ(producers[t]->sizeHint(), traces[t].size());
}

TEST(Trace, SequentialAddressesAreMonotone)
{
    Graph graph = makePath(50);
    TraceOptions options;
    options.numThreads = 1;
    auto traces = generatePullTrace(graph, options);
    std::uint64_t last_offset = 0;
    std::uint64_t last_edge = 0;
    for (const MemoryAccess &access : traces[0]) {
        if (access.region == AccessRegion::Offsets) {
            EXPECT_GE(access.addr, last_offset);
            last_offset = access.addr;
        } else if (access.region == AccessRegion::EdgesArr) {
            EXPECT_GE(access.addr, last_edge);
            last_edge = access.addr;
        }
    }
}

} // namespace
} // namespace gral
