/**
 * @file
 * Tests for the parallel SpMV driver.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "spmv/parallel.h"
#include "spmv/spmv.h"

namespace gral
{
namespace
{

TEST(ParallelSpmv, MatchesSequential)
{
    Graph graph = generateErdosRenyi(2000, 20000, 33);
    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = static_cast<double>(v % 13);
    std::vector<double> sequential(graph.numVertices());
    std::vector<double> parallel(graph.numVertices(), -1.0);
    spmvPull(graph, src, sequential);

    ParallelOptions options;
    options.numThreads = 4;
    ParallelResult result =
        spmvPullParallel(graph, src, parallel, options);
    EXPECT_EQ(sequential, parallel);
    EXPECT_GE(result.wallMs, 0.0);
    EXPECT_GE(result.idlePercent, 0.0);
    EXPECT_LE(result.idlePercent, 100.0);
}

TEST(ParallelSpmv, ReadSumBothDirections)
{
    Graph graph = generateErdosRenyi(1000, 8000, 44);
    std::vector<double> src(graph.numVertices(), 1.0);
    std::vector<double> expected(graph.numVertices());
    std::vector<double> actual(graph.numVertices());

    for (Direction direction : {Direction::In, Direction::Out}) {
        readSum(graph, direction, src, expected);
        readSumParallel(graph, direction, src, actual);
        EXPECT_EQ(expected, actual);
    }
}

TEST(ParallelSpmv, SingleThreadDegenerate)
{
    Graph graph = makeGrid(8, 8);
    std::vector<double> src(graph.numVertices(), 3.0);
    std::vector<double> sequential(graph.numVertices());
    std::vector<double> parallel(graph.numVertices());
    spmvPull(graph, src, sequential);
    ParallelOptions options;
    options.numThreads = 1;
    options.partitionsPerThread = 1;
    spmvPullParallel(graph, src, parallel, options);
    EXPECT_EQ(sequential, parallel);
}

TEST(ParallelSpmv, PushMatchesSequentialPush)
{
    Graph graph = generateErdosRenyi(1500, 15000, 55);
    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = static_cast<double>(v % 7) + 0.5;
    std::vector<double> sequential(graph.numVertices());
    std::vector<double> parallel(graph.numVertices(), -1.0);
    spmvPush(graph, src, sequential);
    ParallelOptions options;
    options.numThreads = 4;
    ParallelResult result =
        spmvPushParallel(graph, src, parallel, options);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(sequential[v], parallel[v]) << v;
    EXPECT_GE(result.wallMs, 0.0);
}

TEST(ParallelSpmv, PushMatchesPullParallel)
{
    Graph graph = generateErdosRenyi(800, 9000, 66);
    std::vector<double> src(graph.numVertices(), 2.5);
    std::vector<double> pull(graph.numVertices());
    std::vector<double> push(graph.numVertices());
    ParallelOptions options;
    options.numThreads = 3;
    spmvPullParallel(graph, src, pull, options);
    spmvPushParallel(graph, src, push, options);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_NEAR(pull[v], push[v], 1e-9);
}

TEST(ParallelSpmv, PushSingleThread)
{
    Graph graph = makeStar(300);
    std::vector<double> src(graph.numVertices(), 1.0);
    std::vector<double> expected(graph.numVertices());
    std::vector<double> actual(graph.numVertices());
    spmvPush(graph, src, expected);
    ParallelOptions options;
    options.numThreads = 1;
    spmvPushParallel(graph, src, actual, options);
    EXPECT_EQ(expected, actual);
}

TEST(ParallelSpmv, ManyPartitions)
{
    Graph graph = makeStar(500);
    std::vector<double> src(graph.numVertices(), 1.0);
    std::vector<double> sequential(graph.numVertices());
    std::vector<double> parallel(graph.numVertices());
    spmvPull(graph, src, sequential);
    ParallelOptions options;
    options.numThreads = 3;
    options.partitionsPerThread = 32;
    spmvPullParallel(graph, src, parallel, options);
    EXPECT_EQ(sequential, parallel);
}

} // namespace
} // namespace gral
