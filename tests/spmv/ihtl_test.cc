/**
 * @file
 * Tests for the iHTL flipped-block traversal (paper Section VIII-A).
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/miss_rate.h"
#include "spmv/ihtl.h"
#include "spmv/spmv.h"

namespace gral
{
namespace
{

TEST(Ihtl, SpmvMatchesPullExactly)
{
    Graph graph = generateErdosRenyi(400, 4000, 7);
    IhtlConfig config;
    config.numHubs = 20;
    IhtlGraph ihtl(graph, config);

    std::vector<double> src(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        src[v] = static_cast<double>(v % 11) + 0.25;
    std::vector<double> expected(graph.numVertices());
    std::vector<double> actual(graph.numVertices(), -1.0);
    spmvPull(graph, src, expected);
    ihtl.spmv(src, actual);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(expected[v], actual[v]) << "vertex " << v;
}

TEST(Ihtl, EdgePartitionIsComplete)
{
    WebGraphParams params;
    params.numVertices = 3000;
    Graph graph = generateWebGraph(params);
    IhtlConfig config;
    config.numHubs = 100;
    IhtlGraph ihtl(graph, config);
    EXPECT_EQ(ihtl.flippedEdges() + ihtl.sparseEdges(),
              graph.numEdges());
    EXPECT_EQ(ihtl.numHubs(), 100u);
}

TEST(Ihtl, HubsAreTopInDegree)
{
    Graph graph = makeStar(100);
    IhtlConfig config;
    config.numHubs = 1;
    IhtlGraph ihtl(graph, config);
    ASSERT_EQ(ihtl.hubs().size(), 1u);
    EXPECT_EQ(ihtl.hubs()[0], 0u); // the star centre
    EXPECT_TRUE(ihtl.isHub(0));
    EXPECT_FALSE(ihtl.isHub(1));
}

TEST(Ihtl, AutoHubCountFromCacheSize)
{
    Graph graph = generateErdosRenyi(5000, 40000, 3);
    IhtlConfig config;
    config.cacheBytes = 16 * 1024;
    config.cacheFraction = 0.5;
    IhtlGraph ihtl(graph, config);
    // 16 KB * 0.5 / 8 B = 1024 hub accumulators.
    EXPECT_EQ(ihtl.numHubs(), 1024u);
}

TEST(Ihtl, HubCountClampedToGraph)
{
    Graph graph = makePath(10);
    IhtlConfig config;
    config.numHubs = 1000;
    IhtlGraph ihtl(graph, config);
    EXPECT_EQ(ihtl.numHubs(), 10u);
}

TEST(Ihtl, TraceCoversEveryEdgeOnce)
{
    Graph graph = generateErdosRenyi(500, 5000, 5);
    IhtlConfig config;
    config.numHubs = 50;
    IhtlGraph ihtl(graph, config);
    TraceOptions options;
    options.numThreads = 4;
    options.traceEdges = false;
    options.traceOffsets = false;
    auto traces = ihtl.generateTrace(options);
    // Per edge exactly one data access (hub write or neighbour read),
    // plus per vertex one own-data load (push pass) and one non-hub
    // result store.
    std::size_t expected = graph.numEdges() + graph.numVertices() +
                           (graph.numVertices() - ihtl.numHubs());
    EXPECT_EQ(traceAccessCount(traces), expected);
}

TEST(Ihtl, ReducesHubMissesOnWebGraph)
{
    // The paper's motivation: RAs cannot improve hub locality, iHTL
    // can. Compare simulated misses to hub data between plain pull
    // SpMV and the iHTL traversal.
    WebGraphParams params;
    params.numVertices = 30000;
    params.meanOutDegree = 16.0;
    Graph graph = generateWebGraph(params);

    SimulationOptions sim;
    sim.cache.sizeBytes = 64 * 1024;
    sim.cache.associativity = 8;
    sim.simulateTlb = false;
    sim.missThresholds = {
        static_cast<EdgeId>(hubThreshold(graph))};

    auto in_deg = degrees(graph, Direction::In);

    auto pull_traces = generatePullTrace(graph, {});
    // Threshold by *in*-degree: misses when accessing in-hub data.
    auto pull = simulateMissProfile(pull_traces, in_deg, in_deg, sim);

    IhtlConfig config;
    config.cacheBytes = sim.cache.sizeBytes;
    IhtlGraph ihtl(graph, config);
    auto ihtl_traces = ihtl.generateTrace({});
    auto flipped =
        simulateMissProfile(ihtl_traces, in_deg, in_deg, sim);

    EXPECT_LT(flipped.missesAboveThreshold[0],
              pull.missesAboveThreshold[0] / 2);
    // And the total data misses should not regress.
    EXPECT_LT(flipped.dataMisses, pull.dataMisses * 11 / 10);
}

} // namespace
} // namespace gral
