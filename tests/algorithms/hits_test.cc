/**
 * @file
 * Tests for HITS.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/hits.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace gral
{
namespace
{

TEST(Hits, EmptyGraph)
{
    Graph graph;
    HitsResult result = hits(graph);
    EXPECT_TRUE(result.authority.empty());
    EXPECT_TRUE(result.hub.empty());
}

TEST(Hits, VectorsL2Normalized)
{
    Graph graph = generateErdosRenyi(300, 3000, 4);
    HitsResult result = hits(graph);
    double auth_norm = 0.0;
    double hub_norm = 0.0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        auth_norm += result.authority[v] * result.authority[v];
        hub_norm += result.hub[v] * result.hub[v];
    }
    EXPECT_NEAR(std::sqrt(auth_norm), 1.0, 1e-9);
    EXPECT_NEAR(std::sqrt(hub_norm), 1.0, 1e-9);
}

TEST(Hits, BipartiteRoles)
{
    // Sources 0..4 all point to sinks 5..6: sources are pure hubs,
    // sinks pure authorities.
    std::vector<Edge> edges;
    for (VertexId s = 0; s < 5; ++s)
        for (VertexId t = 5; t < 7; ++t)
            edges.push_back({s, t});
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(7, edges, options);
    HitsResult result = hits(graph);
    for (VertexId s = 0; s < 5; ++s) {
        EXPECT_GT(result.hub[s], 0.1);
        EXPECT_NEAR(result.authority[s], 0.0, 1e-12);
    }
    for (VertexId t = 5; t < 7; ++t) {
        EXPECT_GT(result.authority[t], 0.1);
        EXPECT_NEAR(result.hub[t], 0.0, 1e-12);
    }
}

TEST(Hits, StarCentreIsTopAuthority)
{
    // Symmetric star: the authority vector keeps the centre on top
    // (ratio 29:1 after the first gather), while the hub update
    // h' = A^2 h has a degenerate eigenspace on the star — the
    // centre's 29 one-hop paths balance each leaf's single path to
    // the 29-strong centre — so hub scores converge to uniform.
    Graph graph = makeStar(30);
    HitsResult result = hits(graph);
    for (VertexId leaf = 1; leaf < 30; ++leaf) {
        EXPECT_GT(result.authority[0], result.authority[leaf]);
        EXPECT_NEAR(result.hub[0], result.hub[leaf], 1e-9);
    }
}

TEST(Hits, ConvergesEarly)
{
    Graph graph = makeGrid(8, 8);
    HitsOptions options;
    options.maxIterations = 200;
    options.tolerance = 1e-10;
    HitsResult result = hits(graph, options);
    EXPECT_LT(result.iterations, options.maxIterations);
}

} // namespace
} // namespace gral
