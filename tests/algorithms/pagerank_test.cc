/**
 * @file
 * Tests for PageRank.
 */

#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/permutation.h"

namespace gral
{
namespace
{

TEST(PageRank, EmptyGraph)
{
    Graph graph;
    PageRankResult result = pageRank(graph);
    EXPECT_TRUE(result.scores.empty());
}

TEST(PageRank, ScoresFormDistribution)
{
    Graph graph = generateErdosRenyi(500, 4000, 9);
    PageRankResult result = pageRank(graph);
    double sum = 0.0;
    for (double score : result.scores) {
        EXPECT_GT(score, 0.0);
        sum += score;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRank, Converges)
{
    Graph graph = makeGrid(10, 10);
    PageRankOptions options;
    options.tolerance = 1e-10;
    PageRankResult result = pageRank(graph, options);
    EXPECT_LT(result.iterations, options.maxIterations);
    EXPECT_LT(result.lastDelta, options.tolerance);
}

TEST(PageRank, SymmetricRegularGraphIsUniform)
{
    // On a cycle (2-regular, symmetric) every vertex has the same
    // score.
    Graph graph = makeCycle(20);
    PageRankResult result = pageRank(graph);
    for (double score : result.scores)
        EXPECT_NEAR(score, 1.0 / 20.0, 1e-9);
}

TEST(PageRank, HubOutranksLeaves)
{
    Graph graph = makeStar(50);
    PageRankResult result = pageRank(graph);
    for (VertexId leaf = 1; leaf < 50; ++leaf)
        EXPECT_GT(result.scores[0], result.scores[leaf]);
}

TEST(PageRank, DanglingMassRedistributed)
{
    // 0 -> 1, 1 dangles: scores must still sum to 1.
    std::vector<Edge> edges = {{0, 1}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(2, edges, options);
    PageRankResult result = pageRank(graph);
    EXPECT_NEAR(result.scores[0] + result.scores[1], 1.0, 1e-9);
    EXPECT_GT(result.scores[1], result.scores[0]);
}

TEST(PageRank, InvariantUnderRelabeling)
{
    // PageRank is a graph property: relabeling must permute the
    // scores, not change them.
    Graph graph = generateErdosRenyi(300, 2500, 17);
    Permutation p = randomPermutation(graph.numVertices(), 5);
    Graph relabeled = applyPermutation(graph, p);

    PageRankOptions options;
    options.tolerance = 1e-13;
    auto base = pageRank(graph, options);
    auto moved = pageRank(relabeled, options);
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        EXPECT_NEAR(base.scores[v], moved.scores[p.newId(v)], 1e-8);
}

} // namespace
} // namespace gral
