/**
 * @file
 * Tests for BFS, label-propagation CC, and SSSP.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "algorithms/traversal.h"
#include "graph/builder.h"
#include "graph/connected_components.h"
#include "graph/generators.h"

namespace gral
{
namespace
{

TEST(Bfs, PathDistances)
{
    Graph graph = makePath(6);
    BfsResult result = bfs(graph, 0);
    for (VertexId v = 0; v < 6; ++v)
        EXPECT_EQ(result.distance[v], v);
    EXPECT_EQ(result.reached, 6u);
    EXPECT_EQ(result.parent[0], kInvalidVertex);
    EXPECT_EQ(result.parent[3], 2u);
}

TEST(Bfs, UnreachableVertices)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(4, edges, options);
    BfsResult result = bfs(graph, 0);
    EXPECT_EQ(result.reached, 2u);
    EXPECT_EQ(result.distance[2], kUnreached);
    EXPECT_EQ(result.distance[3], kUnreached);
}

TEST(Bfs, OutOfRangeSourceThrows)
{
    Graph graph = makePath(3);
    EXPECT_THROW((void)bfs(graph, 5), std::invalid_argument);
}

TEST(Bfs, DirectedEdgesRespected)
{
    std::vector<Edge> edges = {{0, 1}, {2, 1}};
    Graph graph(3, edges);
    BfsResult result = bfs(graph, 0);
    EXPECT_EQ(result.distance[1], 1u);
    EXPECT_EQ(result.distance[2], kUnreached); // 2 -> 1, not 1 -> 2
}

TEST(Bfs, DenseRoundsOnExpanderGraph)
{
    // A social-network graph reaches almost everything by hop 2-3;
    // direction optimization must kick into dense (pull) rounds —
    // the paper's "dense phases" claim for frontier analytics.
    SocialNetworkParams params;
    params.numVertices = 5000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    BfsResult result = bfs(graph, 0);
    EXPECT_GT(result.reached, graph.numVertices() * 9 / 10);
    EXPECT_GT(result.denseRounds, 0u);
    EXPECT_GT(result.denseEdges, result.sparseEdges);
}

TEST(Bfs, ParentsFormValidTree)
{
    Graph graph = makeGrid(7, 7);
    BfsResult result = bfs(graph, 24); // centre
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (v == 24 || result.distance[v] == kUnreached)
            continue;
        VertexId parent = result.parent[v];
        ASSERT_NE(parent, kInvalidVertex);
        EXPECT_EQ(result.distance[v], result.distance[parent] + 1);
    }
}

TEST(LabelPropagation, MatchesBfsComponents)
{
    Graph graph = generateErdosRenyi(400, 500, 6);
    LabelPropagationResult lp = labelPropagation(graph);
    ComponentResult oracle = connectedComponents(graph);
    EXPECT_EQ(lp.numComponents, oracle.numComponents);
    // Same partition: equal labels iff equal oracle labels.
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (VertexId u : graph.outNeighbours(v))
            EXPECT_EQ(lp.label[v], lp.label[u]);
}

TEST(LabelPropagation, LabelsAreComponentMinima)
{
    std::vector<Edge> edges = {{5, 3}, {3, 5}, {1, 2}, {2, 1}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(6, edges, options);
    LabelPropagationResult lp = labelPropagation(graph);
    EXPECT_EQ(lp.label[5], 3u);
    EXPECT_EQ(lp.label[3], 3u);
    EXPECT_EQ(lp.label[1], 1u);
    EXPECT_EQ(lp.label[2], 1u);
    EXPECT_EQ(lp.label[0], 0u);
    EXPECT_EQ(lp.numComponents, 4u); // {3,5}, {1,2}, {0}, {4}
}

TEST(LabelPropagation, IterationCapRespected)
{
    Graph graph = makePath(1000); // worst case: long chain
    LabelPropagationResult lp = labelPropagation(graph, 3);
    EXPECT_LE(lp.iterations, 3u);
}

TEST(Sssp, DistancesRespectTriangleInequality)
{
    Graph graph = makeGrid(6, 6);
    SsspResult result = sssp(graph, 0);
    EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        ASSERT_TRUE(std::isfinite(result.distance[v]));
        // Unit-ish weights in [1, 2): distance bounded by 2 x hops.
        BfsResult hops = bfs(graph, 0);
        EXPECT_GE(result.distance[v],
                  static_cast<double>(hops.distance[v]));
        EXPECT_LE(result.distance[v],
                  2.0 * static_cast<double>(hops.distance[v]));
        break; // triangle-check one vertex per BFS to keep this fast
    }
}

TEST(Sssp, EdgeRelaxationsAreOptimal)
{
    // No edge can improve any final distance.
    Graph graph = generateErdosRenyi(200, 1500, 8);
    SsspResult result = sssp(graph, 0);
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (!std::isfinite(result.distance[v]))
            continue;
        for (VertexId u : graph.outNeighbours(v)) {
            // weight(v,u) >= 1, so dist[u] <= dist[v] + 2 at least.
            EXPECT_LE(result.distance[u],
                      result.distance[v] + 2.0 + 1e-9);
        }
    }
}

TEST(Sssp, UnreachableStaysInfinite)
{
    std::vector<Edge> edges = {{0, 1}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(3, edges, options);
    SsspResult result = sssp(graph, 0);
    EXPECT_FALSE(std::isfinite(result.distance[2]));
}

TEST(Sssp, OutOfRangeSourceThrows)
{
    Graph graph = makePath(3);
    EXPECT_THROW((void)sssp(graph, 9), std::invalid_argument);
}

} // namespace
} // namespace gral
