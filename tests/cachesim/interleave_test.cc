/**
 * @file
 * Tests for round-robin trace interleaving and replay.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cachesim/interleave.h"

namespace gral
{
namespace
{

MemoryAccess
at(std::uint64_t addr)
{
    MemoryAccess access;
    access.addr = addr;
    return access;
}

TEST(Interleaver, RoundRobinChunks)
{
    std::vector<ThreadTrace> traces(2);
    traces[0] = {at(0), at(1), at(2), at(3)};
    traces[1] = {at(100), at(101), at(102), at(103)};
    TraceInterleaver interleaver(traces, 2);
    auto merged = interleaver.materialize();
    ASSERT_EQ(merged.size(), 8u);
    std::vector<std::uint64_t> addrs;
    for (const MemoryAccess &access : merged)
        addrs.push_back(access.addr);
    EXPECT_EQ(addrs, (std::vector<std::uint64_t>{0, 1, 100, 101, 2, 3,
                                                 102, 103}));
}

TEST(Interleaver, UnevenTraceLengths)
{
    std::vector<ThreadTrace> traces(3);
    traces[0] = {at(0), at(1), at(2), at(3), at(4)};
    traces[1] = {at(100)};
    traces[2] = {};
    TraceInterleaver interleaver(traces, 2);
    EXPECT_EQ(interleaver.totalAccesses(), 6u);
    auto merged = interleaver.materialize();
    ASSERT_EQ(merged.size(), 6u);
    EXPECT_EQ(merged[0].addr, 0u);
    EXPECT_EQ(merged[1].addr, 1u);
    EXPECT_EQ(merged[2].addr, 100u);
    EXPECT_EQ(merged[3].addr, 2u);
    EXPECT_EQ(merged[4].addr, 3u);
    EXPECT_EQ(merged[5].addr, 4u);
}

TEST(Interleaver, ChunkLargerThanTraces)
{
    std::vector<ThreadTrace> traces(2);
    traces[0] = {at(0), at(1)};
    traces[1] = {at(100)};
    TraceInterleaver interleaver(traces, 1000);
    auto merged = interleaver.materialize();
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].addr, 0u);
    EXPECT_EQ(merged[2].addr, 100u);
}

TEST(Interleaver, ZeroChunkRejected)
{
    std::vector<ThreadTrace> traces(1);
    EXPECT_THROW(TraceInterleaver(traces, 0), std::invalid_argument);
}

TEST(Interleaver, EmptyTraces)
{
    std::vector<ThreadTrace> traces;
    TraceInterleaver interleaver(traces, 4);
    EXPECT_EQ(interleaver.totalAccesses(), 0u);
    EXPECT_TRUE(interleaver.materialize().empty());
}

TEST(Replay, CountsAllAccesses)
{
    std::vector<ThreadTrace> traces(2);
    for (std::uint64_t i = 0; i < 10; ++i) {
        traces[0].push_back(at(i * 64));
        traces[1].push_back(at((100 + i) * 64));
    }
    CacheConfig config;
    config.sizeBytes = 4096;
    config.associativity = 4;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::LRU;
    Cache cache(config);
    ReplayResult result = replaySimple(traces, 4, cache);
    EXPECT_EQ(result.accessCount, 20u);
    EXPECT_EQ(result.cache.accesses(), 20u);
    EXPECT_EQ(result.cache.misses, 20u); // all distinct lines
}

TEST(Replay, TlbOptional)
{
    std::vector<ThreadTrace> traces(1);
    traces[0] = {at(0x0), at(0x1000), at(0x0)};
    CacheConfig config;
    config.sizeBytes = 4096;
    config.associativity = 4;
    config.lineBytes = 64;
    Cache cache(config);
    Tlb tlb(stlb4kConfig());
    ReplayResult result = replaySimple(traces, 8, cache, &tlb);
    EXPECT_EQ(result.tlb.accesses(), 3u);
    EXPECT_EQ(result.tlb.misses, 2u);
}

TEST(Replay, ScanHookFires)
{
    std::vector<ThreadTrace> traces(1);
    for (std::uint64_t i = 0; i < 100; ++i)
        traces[0].push_back(at(i * 64));
    CacheConfig config;
    config.sizeBytes = 65536;
    config.associativity = 4;
    config.lineBytes = 64;
    Cache cache(config);
    std::uint64_t scans = 0;
    replay(
        traces, 8, cache, nullptr,
        [](const MemoryAccess &, const AccessOutcome &) {}, 25,
        [&](const Cache &) { ++scans; });
    EXPECT_EQ(scans, 4u);
}

TEST(Replay, AccessHookSeesOutcomes)
{
    std::vector<ThreadTrace> traces(1);
    traces[0] = {at(0x0), at(0x0)};
    CacheConfig config;
    config.sizeBytes = 4096;
    config.associativity = 4;
    config.lineBytes = 64;
    Cache cache(config);
    std::vector<bool> hits;
    replay(
        traces, 8, cache, nullptr,
        [&](const MemoryAccess &, const AccessOutcome &outcome) {
            hits.push_back(outcome.cacheHit);
        },
        0, [](const Cache &) {});
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_FALSE(hits[0]);
    EXPECT_TRUE(hits[1]);
}

} // namespace
} // namespace gral
