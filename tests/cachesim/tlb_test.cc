/**
 * @file
 * Unit tests for the TLB model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cachesim/tlb.h"

namespace gral
{
namespace
{

TlbConfig
toyTlb()
{
    TlbConfig config;
    config.entries = 8;
    config.associativity = 2;
    config.pageBytes = 4096;
    return config;
}

TEST(Tlb, PresetConfigsConstruct)
{
    Tlb stlb(stlb4kConfig());
    Tlb huge(tlb2mConfig());
    EXPECT_EQ(stlb.config().pageBytes, 4096u);
    EXPECT_EQ(huge.config().pageBytes, 2ull * 1024 * 1024);
}

TEST(Tlb, RejectsBrokenGeometry)
{
    TlbConfig config = toyTlb();
    config.pageBytes = 5000;
    EXPECT_THROW(Tlb{config}, std::invalid_argument);
    config = toyTlb();
    config.associativity = 3; // 8/3 -> 2 sets? 8/3=2 non-pow2 check
    config.entries = 9;
    EXPECT_THROW(Tlb{config}, std::invalid_argument);
}

TEST(Tlb, SamePageHits)
{
    Tlb tlb(toyTlb());
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1800)); // same 4K page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(toyTlb()); // 4 sets x 2 ways
    // Pages 0, 4, 8 all map to set 0.
    tlb.access(0 * 4096);
    tlb.access(4 * 4096);
    tlb.access(0 * 4096);     // page 0 most recent
    tlb.access(8 * 4096);     // evicts page 4
    EXPECT_TRUE(tlb.access(0 * 4096));
    EXPECT_FALSE(tlb.access(4 * 4096));
}

TEST(Tlb, HugePagesCoverMoreAddressSpace)
{
    Tlb small(stlb4kConfig());
    Tlb huge(tlb2mConfig());
    // Walk 64 MB sequentially in 4 KB steps.
    for (std::uint64_t addr = 0; addr < (64ull << 20); addr += 4096) {
        small.access(addr);
        huge.access(addr);
    }
    // 4 KB pages: 16384 pages > 1536 entries -> many misses.
    // 2 MB pages: only 32 distinct pages but also only 32 entries;
    // sequential access still hits within each page.
    EXPECT_EQ(huge.stats().misses, 32u);
    EXPECT_EQ(small.stats().misses, 16384u);
    EXPECT_GT(huge.stats().hits, small.stats().hits / 2);
}

TEST(Tlb, FlushAndResetStats)
{
    Tlb tlb(toyTlb());
    tlb.access(0x0);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x0)); // re-misses after flush
    tlb.resetStats();
    EXPECT_EQ(tlb.stats().accesses(), 0u);
}

TEST(Tlb, MissRateComputation)
{
    Tlb tlb(toyTlb());
    tlb.access(0x0);
    tlb.access(0x0);
    tlb.access(0x0);
    tlb.access(0x0);
    EXPECT_DOUBLE_EQ(tlb.stats().missRate(), 0.25);
}

} // namespace
} // namespace gral
