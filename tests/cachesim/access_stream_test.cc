/**
 * @file
 * Tests for the streaming access pipeline: producers, sinks, and the
 * round-robin InterleavingScheduler.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cachesim/access_stream.h"
#include "cachesim/interleave.h"

namespace gral
{
namespace
{

MemoryAccess
at(std::uint64_t addr)
{
    MemoryAccess access;
    access.addr = addr;
    return access;
}

std::vector<std::uint64_t>
addrsOf(const ThreadTrace &trace)
{
    std::vector<std::uint64_t> addrs;
    for (const MemoryAccess &access : trace)
        addrs.push_back(access.addr);
    return addrs;
}

/** Stream @p traces through a scheduler and collect the result. */
ThreadTrace
streamed(const std::vector<ThreadTrace> &traces,
         std::size_t chunk_size)
{
    InterleavingScheduler scheduler(producersFromTraces(traces),
                                    chunk_size);
    ThreadTrace out;
    VectorSink sink(out);
    scheduler.drainTo(sink);
    return out;
}

/** The invariant the refactor rests on: for every chunk size, the
 *  streamed order equals the materialized TraceInterleaver order. */
void
expectMatchesMaterialize(const std::vector<ThreadTrace> &traces,
                         std::size_t chunk_size)
{
    TraceInterleaver interleaver(traces, chunk_size);
    EXPECT_EQ(addrsOf(streamed(traces, chunk_size)),
              addrsOf(interleaver.materialize()))
        << "chunk size " << chunk_size;
}

TEST(Scheduler, EmptyProducerSet)
{
    InterleavingScheduler scheduler({}, 4);
    ThreadTrace out;
    VectorSink sink(out);
    scheduler.drainTo(sink);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(scheduler.streamed(), 0u);
    EXPECT_EQ(scheduler.peakResidentAccesses(), 0u);
}

TEST(Scheduler, EmptyThreadsAmongNonEmpty)
{
    std::vector<ThreadTrace> traces(4);
    traces[1] = {at(0), at(1), at(2)};
    traces[3] = {at(100)};
    for (std::size_t chunk : {1u, 2u, 8u})
        expectMatchesMaterialize(traces, chunk);
}

TEST(Scheduler, ThreadShorterThanChunk)
{
    std::vector<ThreadTrace> traces(2);
    traces[0] = {at(0), at(1), at(2), at(3), at(4), at(5)};
    traces[1] = {at(100)}; // exhausted inside its first turn
    expectMatchesMaterialize(traces, 4);
    auto merged = streamed(traces, 4);
    ASSERT_EQ(merged.size(), 7u);
    // turn 1: thread 0 contributes 4, thread 1 contributes 1;
    // turn 2: only thread 0 is live.
    EXPECT_EQ(merged[4].addr, 100u);
    EXPECT_EQ(merged[5].addr, 4u);
}

TEST(Scheduler, ChunkSizeOne)
{
    std::vector<ThreadTrace> traces(3);
    traces[0] = {at(0), at(1)};
    traces[1] = {at(100), at(101), at(102)};
    traces[2] = {at(200)};
    expectMatchesMaterialize(traces, 1);
}

TEST(Scheduler, ChunkLargerThanEveryTrace)
{
    std::vector<ThreadTrace> traces(3);
    traces[0] = {at(0), at(1)};
    traces[1] = {at(100)};
    traces[2] = {at(200), at(201), at(202)};
    expectMatchesMaterialize(traces, 1000);
    // Each thread is drained whole in its single turn.
    EXPECT_EQ(addrsOf(streamed(traces, 1000)),
              (std::vector<std::uint64_t>{0, 1, 100, 200, 201, 202}));
}

TEST(Scheduler, ManyShapesMatchMaterialize)
{
    std::vector<ThreadTrace> traces(3);
    for (std::uint64_t i = 0; i < 17; ++i)
        traces[0].push_back(at(i));
    for (std::uint64_t i = 0; i < 5; ++i)
        traces[1].push_back(at(100 + i));
    for (std::uint64_t i = 0; i < 29; ++i)
        traces[2].push_back(at(200 + i));
    for (std::size_t chunk : {1u, 2u, 3u, 5u, 8u, 16u, 64u})
        expectMatchesMaterialize(traces, chunk);
}

TEST(Scheduler, ZeroChunkRejected)
{
    EXPECT_THROW(InterleavingScheduler({}, 0), std::invalid_argument);
}

TEST(Scheduler, SingleUse)
{
    std::vector<ThreadTrace> traces(1);
    traces[0] = {at(0)};
    InterleavingScheduler scheduler(producersFromTraces(traces), 4);
    scheduler.forEach([](const MemoryAccess &) {});
    EXPECT_THROW(scheduler.forEach([](const MemoryAccess &) {}),
                 std::logic_error);
}

TEST(Scheduler, PeakResidentBoundedByChunk)
{
    std::vector<ThreadTrace> traces(2);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        traces[0].push_back(at(i));
        traces[1].push_back(at(10000 + i));
    }
    InterleavingScheduler scheduler(producersFromTraces(traces), 16);
    scheduler.forEach([](const MemoryAccess &) {});
    EXPECT_EQ(scheduler.streamed(), 2000u);
    EXPECT_EQ(scheduler.peakResidentAccesses(), 16u);
    EXPECT_EQ(scheduler.peakResidentBytes(),
              16u * sizeof(MemoryAccess));
}

TEST(VectorAdapters, RoundTrip)
{
    ThreadTrace trace = {at(1), at(2), at(3), at(4), at(5)};
    VectorProducer producer(trace);
    EXPECT_EQ(producer.sizeHint(), 5u);
    ThreadTrace copy = drainProducer(producer);
    EXPECT_EQ(addrsOf(copy), addrsOf(trace));
    // Exhausted: further fills return 0.
    MemoryAccess spare[2];
    EXPECT_EQ(producer.fill(spare), 0u);
}

TEST(VectorAdapters, ShortFills)
{
    ThreadTrace trace = {at(1), at(2), at(3)};
    VectorProducer producer(trace);
    MemoryAccess two[2];
    EXPECT_EQ(producer.fill(two), 2u);
    EXPECT_EQ(two[0].addr, 1u);
    EXPECT_EQ(producer.fill(two), 1u);
    EXPECT_EQ(two[0].addr, 3u);
    EXPECT_EQ(producer.fill(two), 0u);
}

TEST(StreamedReplay, MatchesVectorReplay)
{
    std::vector<ThreadTrace> traces(3);
    for (std::uint64_t i = 0; i < 200; ++i) {
        traces[0].push_back(at((i % 40) * 64));
        traces[1].push_back(at(0x10000 + (i % 7) * 64));
        if (i % 2 == 0)
            traces[2].push_back(at(0x20000 + i * 64));
    }
    CacheConfig config;
    config.sizeBytes = 4096;
    config.associativity = 4;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;

    Cache vector_cache(config);
    ReplayResult from_vectors =
        replaySimple(traces, 8, vector_cache);

    Cache stream_cache(config);
    InterleavingScheduler scheduler(producersFromTraces(traces), 8);
    ReplayResult from_stream =
        replayStreamSimple(scheduler, stream_cache);

    EXPECT_EQ(from_stream.accessCount, from_vectors.accessCount);
    EXPECT_EQ(from_stream.cache.hits, from_vectors.cache.hits);
    EXPECT_EQ(from_stream.cache.misses, from_vectors.cache.misses);
    // The vector path additionally holds the materialized log.
    EXPECT_LT(from_stream.peakResidentAccesses,
              from_vectors.peakResidentAccesses);
}

TEST(Sinks, PeriodicScanDecorator)
{
    std::vector<ThreadTrace> traces(1);
    for (std::uint64_t i = 0; i < 100; ++i)
        traces[0].push_back(at(i * 64));
    CacheConfig config;
    config.sizeBytes = 65536;
    config.associativity = 4;
    config.lineBytes = 64;
    Cache cache(config);
    CacheReplaySink replay_sink(cache);
    std::uint64_t scans = 0;
    PeriodicScanSink scan_sink(replay_sink, cache, 25,
                               [&](const Cache &) { ++scans; });
    InterleavingScheduler scheduler(producersFromTraces(traces), 8);
    scheduler.drainTo(scan_sink);
    EXPECT_EQ(scans, 4u);
    EXPECT_EQ(replay_sink.accessCount(), 100u);
}

} // namespace
} // namespace gral
