/**
 * @file
 * Tests for the cachesim-side validators (cachesim/validate.h):
 * broken cache geometry and misordered access streams must each be
 * rejected.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cachesim/access_stream.h"
#include "cachesim/validate.h"

namespace gral
{
namespace
{

// ------------------------------------------------------- cache config

TEST(ValidateCacheConfig, AcceptsThePaperConfigs)
{
    EXPECT_NO_THROW(validateCacheConfig(paperL3Config()));
    EXPECT_NO_THROW(validateCacheConfig(paperL2Config()));
    EXPECT_NO_THROW(validateCacheConfig(paperL1Config()));
}

TEST(ValidateCacheConfig, RejectsNonPowerOfTwoLine)
{
    CacheConfig config;
    config.lineBytes = 48;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsZeroWays)
{
    CacheConfig config;
    config.associativity = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsNonPowerOfTwoSetCount)
{
    CacheConfig config;
    config.sizeBytes = 3 * 1024; // 3 KB / 1-way / 64 B = 48 sets
    config.associativity = 1;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsRrpvWidthOutOfRange)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.associativity = 4;
    config.rrpvBits = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
    config.rrpvBits = 9;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
}

TEST(ValidateCacheConfig, RejectsZeroBrripEpsilonUnderRrip)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.associativity = 4;
    config.brripEpsilon = 0;
    EXPECT_THROW(validateCacheConfig(config), ValidationError);
    // ...but LRU never draws from the epsilon counter.
    config.policy = ReplacementPolicy::LRU;
    EXPECT_NO_THROW(validateCacheConfig(config));
}

// ------------------------------------------------------- order check

MemoryAccess
accessAt(std::uint64_t addr, VertexId owner = kInvalidVertex)
{
    MemoryAccess access;
    access.addr = addr;
    access.ownerVertex = owner;
    return access;
}

TEST(OrderCheckSink, AcceptsTheReferenceOrder)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64),
                                        accessAt(128)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    for (const MemoryAccess &access : reference)
        checker.consume(access);
    EXPECT_NO_THROW(checker.finish());
    EXPECT_EQ(collected.size(), reference.size());
}

TEST(OrderCheckSink, RejectsMisorderedStream)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.consume(accessAt(999)), ValidationError);
    // The bad access must not have leaked downstream.
    EXPECT_EQ(collected.size(), 1u);
}

TEST(OrderCheckSink, RejectsSurplusAccesses)
{
    std::vector<MemoryAccess> reference{accessAt(0)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.consume(accessAt(0)), ValidationError);
}

TEST(OrderCheckSink, RejectsTruncatedStream)
{
    std::vector<MemoryAccess> reference{accessAt(0), accessAt(64)};
    std::vector<MemoryAccess> collected;
    VectorSink inner(collected);
    OrderCheckSink checker(inner, reference);
    checker.consume(reference[0]);
    EXPECT_THROW(checker.finish(), ValidationError);
}

/** End-to-end wiring: the streaming scheduler's interleaving must
 *  reproduce the reference order bit-for-bit when replayed through an
 *  OrderCheckSink. */
TEST(OrderCheckSink, SchedulerInterleavingMatchesReference)
{
    std::vector<ThreadTrace> traces(3);
    for (std::size_t t = 0; t < traces.size(); ++t)
        for (std::size_t i = 0; i < 10 + t * 3; ++i)
            traces[t].push_back(
                accessAt(t * 10000 + i * 64,
                         static_cast<VertexId>(i)));

    // Reference order: one scheduler materializes the interleaving...
    std::vector<MemoryAccess> reference;
    {
        InterleavingScheduler scheduler(producersFromTraces(traces), 4);
        VectorSink sink(reference);
        scheduler.drainTo(sink);
    }

    // ...a second identical run must replay it exactly.
    std::vector<MemoryAccess> replayed;
    VectorSink inner(replayed);
    OrderCheckSink checker(inner, reference);
    InterleavingScheduler scheduler(producersFromTraces(traces), 4);
    EXPECT_NO_THROW(scheduler.drainTo(checker));
    EXPECT_NO_THROW(checker.finish());
    EXPECT_EQ(replayed.size(), reference.size());
}

} // namespace
} // namespace gral
