/**
 * @file
 * Tests for the optional multi-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cachesim/hierarchy.h"

namespace gral
{
namespace
{

CacheConfig
level(std::uint64_t size)
{
    CacheConfig config;
    config.sizeBytes = size;
    config.associativity = 4;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::LRU;
    return config;
}

TEST(Hierarchy, RejectsEmpty)
{
    EXPECT_THROW(CacheHierarchy{std::vector<CacheConfig>{}},
                 std::invalid_argument);
}

TEST(Hierarchy, HitLevelReporting)
{
    CacheHierarchy hierarchy({level(1024), level(65536)});
    // Cold access: misses both levels.
    EXPECT_EQ(hierarchy.access(0x0, 8, false), 2u);
    // Immediately after: L1 hit.
    EXPECT_EQ(hierarchy.access(0x0, 8, false), 0u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    CacheHierarchy hierarchy({level(1024), level(65536)});
    // 1 KB L1 = 16 lines; walk 64 lines, then rewalk: L1 misses but
    // L2 (64 KB) still holds them.
    for (std::uint64_t i = 0; i < 64; ++i)
        hierarchy.access(i * 64, 8, false);
    std::size_t l2_hits = 0;
    for (std::uint64_t i = 0; i < 64; ++i)
        if (hierarchy.access(i * 64, 8, false) == 1)
            ++l2_hits;
    EXPECT_GT(l2_hits, 32u);
    EXPECT_EQ(hierarchy.level(1).stats().misses, 64u);
}

TEST(Hierarchy, FlushClearsAllLevels)
{
    CacheHierarchy hierarchy({level(1024), level(65536)});
    hierarchy.access(0x0, 8, false);
    hierarchy.flush();
    EXPECT_EQ(hierarchy.access(0x0, 8, false), 2u);
}

TEST(Hierarchy, SingleLevelDegeneratesToCache)
{
    CacheHierarchy hierarchy({level(4096)});
    EXPECT_EQ(hierarchy.levels(), 1u);
    EXPECT_EQ(hierarchy.access(0x40, 4, false), 1u);
    EXPECT_EQ(hierarchy.access(0x40, 4, false), 0u);
}

} // namespace
} // namespace gral
