/**
 * @file
 * Unit tests for the set-associative cache model and its replacement
 * policies.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "cachesim/cache.h"

namespace gral
{
namespace
{

/** 4 sets x 2 ways x 64 B lines = 512 B toy cache. */
CacheConfig
toyConfig(ReplacementPolicy policy)
{
    CacheConfig config;
    config.sizeBytes = 512;
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = policy;
    return config;
}

TEST(CacheGeometry, PaperL3Shape)
{
    CacheConfig config = paperL3Config();
    EXPECT_EQ(config.sizeBytes, 22ull * 1024 * 1024);
    EXPECT_EQ(config.associativity, 11u);
    EXPECT_EQ(config.numSets(), 32768u);
    Cache cache(config); // constructs without throwing
    EXPECT_EQ(cache.numValidLines(), 0u);
}

TEST(CacheGeometry, RejectsBrokenShapes)
{
    CacheConfig config = toyConfig(ReplacementPolicy::LRU);
    config.lineBytes = 48; // not a power of two
    EXPECT_THROW(Cache{config}, std::invalid_argument);

    config = toyConfig(ReplacementPolicy::LRU);
    config.associativity = 0;
    EXPECT_THROW(Cache{config}, std::invalid_argument);

    config = toyConfig(ReplacementPolicy::LRU);
    config.sizeBytes = 384; // 3 sets: not a power of two
    EXPECT_THROW(Cache{config}, std::invalid_argument);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1010, false)); // same line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, DistinctLinesMissIndependently)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    EXPECT_FALSE(cache.access(0x0, false));
    EXPECT_FALSE(cache.access(0x40, false)); // next line, set 1
    EXPECT_TRUE(cache.access(0x0, false));
    EXPECT_TRUE(cache.access(0x40, false));
}

TEST(Cache, LruEvictsLeastRecent)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    // Set 0 lines: addresses with (addr / 64) % 4 == 0.
    std::uint64_t a = 0x000;
    std::uint64_t b = 0x100;
    std::uint64_t c = 0x200;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false); // a now most recent
    cache.access(c, false); // evicts b
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, ContainsDoesNotTouchState)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    cache.access(0x0, false);
    CacheStats before = cache.stats();
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_EQ(cache.stats().hits, before.hits);
    EXPECT_EQ(cache.stats().misses, before.misses);
}

TEST(Cache, EvictionAndWritebackCounters)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    cache.access(0x000, true);  // dirty
    cache.access(0x100, false); // clean
    cache.access(0x200, false); // evicts dirty 0x000
    cache.access(0x300, false); // evicts clean 0x100
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    cache.access(0x0, false);
    cache.access(0x40, false);
    EXPECT_EQ(cache.numValidLines(), 2u);
    cache.flush();
    EXPECT_EQ(cache.numValidLines(), 0u);
    EXPECT_FALSE(cache.contains(0x0));
    // Stats survive a flush; resetStats clears them.
    EXPECT_EQ(cache.stats().misses, 2u);
    cache.resetStats();
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(Cache, AccessRangeSplitsAcrossLines)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    // 8 bytes starting 4 bytes before a line boundary touch 2 lines.
    EXPECT_FALSE(cache.accessRange(0x3c, 8, false));
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_TRUE(cache.accessRange(0x3c, 8, false));
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, ForEachValidLineReportsLineAddresses)
{
    Cache cache(toyConfig(ReplacementPolicy::LRU));
    cache.access(0x1044, false);
    cache.access(0x2080, false);
    std::vector<std::uint64_t> lines;
    cache.forEachValidLine(
        [&](std::uint64_t addr) { lines.push_back(addr); });
    ASSERT_EQ(lines.size(), 2u);
    std::sort(lines.begin(), lines.end());
    EXPECT_EQ(lines[0], 0x1040u);
    EXPECT_EQ(lines[1], 0x2080u);
}

TEST(Cache, WorkingSetWithinCapacityAllHitsLru)
{
    CacheConfig config = toyConfig(ReplacementPolicy::LRU);
    Cache cache(config);
    // 8 lines = full capacity; loop twice, second pass must all hit.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t line = 0; line < 8; ++line)
            cache.access(line * 64, false);
    EXPECT_EQ(cache.stats().misses, 8u);
    EXPECT_EQ(cache.stats().hits, 8u);
}

TEST(Cache, LruThrashesOnCyclicOverCapacity)
{
    // Classic LRU pathology: cycling capacity+1 lines in one set
    // never hits.
    CacheConfig config = toyConfig(ReplacementPolicy::LRU);
    Cache cache(config);
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t i = 0; i < 3; ++i) // set 0 has 2 ways
            cache.access(i * 4 * 64, false);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, SrripResistsScansAtLeastAsWellAsLru)
{
    // Hot lines re-referenced between bursts of streaming lines: the
    // RRIP family is designed to retain the hot lines where LRU's
    // recency order lets the scan push them out.
    auto hot_hits = [](ReplacementPolicy policy) {
        CacheConfig config;
        config.sizeBytes = 8 * 64 * 4; // 4 sets x 8 ways
        config.associativity = 8;
        config.lineBytes = 64;
        config.policy = policy;
        Cache cache(config);
        std::uint64_t hits = 0;
        for (std::uint64_t round = 0; round < 200; ++round) {
            // Two back-to-back touches: the second promotes the line
            // to RRPV 0, which is what lets SRRIP protect it through
            // the following scan burst. Under LRU the line is still
            // flushed by the 12-line scan, so only the trivial second
            // touch hits.
            if (cache.access(0x0, false)) // hot line, set 0
                ++hits;
            if (cache.access(0x0, false))
                ++hits;
            for (std::uint64_t s = 0; s < 12; ++s) {
                // 12 fresh scan lines through set 0 per round.
                std::uint64_t line = 1 + round * 12 + s;
                cache.access(line * 4 * 64, false);
            }
        }
        return hits;
    };
    std::uint64_t srrip = hot_hits(ReplacementPolicy::SRRIP);
    std::uint64_t lru = hot_hits(ReplacementPolicy::LRU);
    EXPECT_EQ(lru, 200u); // only the second touch of each pair hits
    EXPECT_GT(srrip, lru);
}

TEST(Cache, SrripHitPromotesToNear)
{
    CacheConfig config = toyConfig(ReplacementPolicy::SRRIP);
    Cache cache(config);
    std::uint64_t a = 0x000;
    cache.access(a, false);
    cache.access(a, false); // promoted to RRPV 0
    // Two fresh lines map to the same set; the re-referenced line
    // must survive both replacements.
    cache.access(0x100, false);
    cache.access(0x200, false);
    EXPECT_TRUE(cache.contains(a));
}

TEST(Cache, BrripInsertsDistant)
{
    // With BRRIP most insertions are distant (RRPV max), so a line
    // inserted then followed by one conflict miss is usually evicted.
    CacheConfig config = toyConfig(ReplacementPolicy::BRRIP);
    config.brripEpsilon = 1000000; // never insert long
    Cache cache(config);
    cache.access(0x000, false);
    cache.access(0x100, false);
    cache.access(0x200, false); // set 0 full: 2 candidates at max
    // 0x000 was inserted first at RRPV max and is the first max
    // found, so it is the victim.
    EXPECT_FALSE(cache.contains(0x000));
    EXPECT_TRUE(cache.contains(0x100));
    EXPECT_TRUE(cache.contains(0x200));
}

TEST(Cache, DrripPselMovesOnLeaderMisses)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2; // 64 sets, 2 ways
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;
    config.duelingLeaderSets = 8;
    Cache cache(config);
    std::uint32_t initial = cache.pselValue();
    // Missing in SRRIP-leader sets (set % 4 == 0 with slot even)
    // pushes PSEL up.
    for (std::uint64_t i = 0; i < 64; ++i)
        cache.access(i * 64 * 64 * 8, false); // all land in set 0
    EXPECT_NE(cache.pselValue(), initial);
}

TEST(Cache, DrripBehavesSanelyOnMixedTraffic)
{
    CacheConfig config = paperL3Config();
    config.sizeBytes = 1 << 16; // shrink for speed: 64 KB
    config.associativity = 4;
    Cache cache(config);
    // Streaming plus a hot line: the hot line should mostly hit.
    std::uint64_t hot = 0x12340;
    std::uint64_t hot_hits = 0;
    for (std::uint64_t i = 0; i < 20000; ++i) {
        cache.access(0x100000 + i * 64, false);
        if (cache.access(hot, false))
            ++hot_hits;
    }
    EXPECT_GT(hot_hits, 19000u);
}

TEST(Cache, PolicyNames)
{
    EXPECT_STREQ(toString(ReplacementPolicy::LRU), "LRU");
    EXPECT_STREQ(toString(ReplacementPolicy::SRRIP), "SRRIP");
    EXPECT_STREQ(toString(ReplacementPolicy::BRRIP), "BRRIP");
    EXPECT_STREQ(toString(ReplacementPolicy::DRRIP), "DRRIP");
}

TEST(Cache, SetClassNames)
{
    EXPECT_STREQ(toString(SetClass::SrripLeader), "srrip_leader");
    EXPECT_STREQ(toString(SetClass::BrripLeader), "brrip_leader");
    EXPECT_STREQ(toString(SetClass::Follower), "follower");
}

TEST(Cache, ClassStatsPartitionTheTotals)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2; // 64 sets, 2 ways
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;
    config.duelingLeaderSets = 8;
    Cache cache(config);

    for (std::uint64_t i = 0; i < 5000; ++i)
        cache.access((i * 97) % 4096 * 64, i % 3 == 0);

    std::uint64_t class_hits = 0;
    std::uint64_t class_misses = 0;
    std::uint64_t class_evictions = 0;
    std::uint64_t class_writebacks = 0;
    for (std::size_t c = 0; c < kNumSetClasses; ++c) {
        const CacheStats &stats =
            cache.classStats(static_cast<SetClass>(c));
        class_hits += stats.hits;
        class_misses += stats.misses;
        class_evictions += stats.evictions;
        class_writebacks += stats.writebacks;
    }
    EXPECT_EQ(class_hits, cache.stats().hits);
    EXPECT_EQ(class_misses, cache.stats().misses);
    EXPECT_EQ(class_evictions, cache.stats().evictions);
    EXPECT_EQ(class_writebacks, cache.stats().writebacks);
    // With 8 leader sets per team out of 64, all three classes see
    // traffic under a uniform sweep.
    for (std::size_t c = 0; c < kNumSetClasses; ++c)
        EXPECT_GT(cache.classStats(static_cast<SetClass>(c))
                      .accesses(),
                  0u);
}

TEST(Cache, NonDrripCountsEverythingAsFollower)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2;
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::LRU;
    Cache cache(config);
    for (std::uint64_t i = 0; i < 1000; ++i)
        cache.access(i * 64, false);
    EXPECT_EQ(cache.classStats(SetClass::Follower).accesses(), 1000u);
    EXPECT_EQ(cache.classStats(SetClass::SrripLeader).accesses(), 0u);
    EXPECT_EQ(cache.classStats(SetClass::BrripLeader).accesses(), 0u);
}

TEST(Cache, PselSamplingRecordsTrajectory)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2;
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;
    config.duelingLeaderSets = 8;
    Cache cache(config);
    cache.enablePselSampling(10);

    for (std::uint64_t i = 0; i < 1000; ++i)
        cache.access((i * 97) % 4096 * 64, false);

    const std::vector<PselSample> &samples = cache.pselSamples();
    ASSERT_FALSE(samples.empty());
    EXPECT_EQ(samples.size(), 100u); // every 10th of 1000 accesses
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_LT(samples[i - 1].access, samples[i].access);
    for (const PselSample &sample : samples)
        EXPECT_LE(sample.psel, cache.pselMax());
}

TEST(Cache, PselSamplingDecimatesWhenFull)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2;
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;
    config.duelingLeaderSets = 8;
    Cache cache(config);
    cache.enablePselSampling(1, /*max_samples=*/16);

    for (std::uint64_t i = 0; i < 10000; ++i)
        cache.access((i * 97) % 4096 * 64, false);

    const std::vector<PselSample> &samples = cache.pselSamples();
    EXPECT_LE(samples.size(), 16u);
    EXPECT_GE(samples.size(), 2u);
    // Decimation keeps early samples: coverage spans the run instead
    // of a sliding window of the tail.
    EXPECT_LT(samples.front().access, 100u);
    EXPECT_GT(samples.back().access, 5000u);
}

TEST(Cache, ResetStatsClearsClassStatsAndSamples)
{
    CacheConfig config;
    config.sizeBytes = 64 * 64 * 2;
    config.associativity = 2;
    config.lineBytes = 64;
    config.policy = ReplacementPolicy::DRRIP;
    Cache cache(config);
    cache.enablePselSampling(1);
    for (std::uint64_t i = 0; i < 100; ++i)
        cache.access(i * 64, false);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_TRUE(cache.pselSamples().empty());
    for (std::size_t c = 0; c < kNumSetClasses; ++c)
        EXPECT_EQ(cache.classStats(static_cast<SetClass>(c))
                      .accesses(),
                  0u);
}

/** Property: miss count equals distinct lines when capacity is not
 *  exceeded, for every policy. */
class CachePolicyProperty
    : public ::testing::TestWithParam<ReplacementPolicy>
{
};

TEST_P(CachePolicyProperty, CompulsoryMissesOnly)
{
    CacheConfig config;
    config.sizeBytes = 64 * 1024;
    config.associativity = 8;
    config.lineBytes = 64;
    config.policy = GetParam();
    Cache cache(config);
    // 64 distinct lines spread over sets; re-walk them 10 times.
    for (int pass = 0; pass < 10; ++pass)
        for (std::uint64_t i = 0; i < 64; ++i)
            cache.access(i * 64, false);
    EXPECT_EQ(cache.stats().misses, 64u);
    EXPECT_EQ(cache.stats().hits, 64u * 9);
}

TEST_P(CachePolicyProperty, StatsBalance)
{
    CacheConfig config;
    config.sizeBytes = 4096;
    config.associativity = 4;
    config.lineBytes = 64;
    config.policy = GetParam();
    Cache cache(config);
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cache.access(x % 65536, (x >> 20) & 1);
    }
    EXPECT_EQ(cache.stats().accesses(), 5000u);
    EXPECT_LE(cache.numValidLines(),
              config.numSets() * config.associativity);
    EXPECT_LE(cache.stats().writebacks, cache.stats().evictions);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyProperty,
                         ::testing::Values(ReplacementPolicy::LRU,
                                           ReplacementPolicy::SRRIP,
                                           ReplacementPolicy::BRRIP,
                                           ReplacementPolicy::DRRIP));

} // namespace
} // namespace gral
