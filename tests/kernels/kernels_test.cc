/**
 * @file
 * Tests for the generic kernel layer: registry behaviour, relabeling
 * plans, and — per kernel — equivalence between the streamed trace
 * path and a materialized replay of the very same producers. The
 * workload-specific checks pin each kernel to its reference
 * implementation: spmv producers must equal makePullProducers(),
 * PageRank scores must be permutation-equivariant, BFS frontiers must
 * agree across push-only / pull-only / direction-optimizing modes,
 * and CC labels must match labelPropagation().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/traversal.h"
#include "cachesim/access_stream.h"
#include "graph/connected_components.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "kernels/bfs_kernel.h"
#include "kernels/cc_kernel.h"
#include "kernels/kernel.h"
#include "kernels/pagerank_kernel.h"
#include "kernels/spmv_kernel.h"
#include "metrics/miss_rate.h"
#include "reorder/registry.h"
#include "spmv/trace_gen.h"

namespace gral
{
namespace
{

/** Skewed-degree test graph, big enough to have hubs and several
 *  BFS rounds but small enough for exhaustive trace comparison. */
Graph
testGraph()
{
    RMatParams params;
    params.scale = 9; // 512 vertices
    params.edgeFactor = 8;
    params.seed = 42;
    return generateRMat(params);
}

TraceOptions
traceOptions()
{
    TraceOptions options;
    options.numThreads = 3;
    return options;
}

SimulationOptions
simOptions()
{
    SimulationOptions sim;
    sim.cache.sizeBytes = 32 * 1024;
    sim.cache.associativity = 8;
    sim.chunkSize = 64;
    sim.simulateTlb = false;
    return sim;
}

std::vector<ThreadTrace>
drainAll(ProducerSet producers)
{
    std::vector<ThreadTrace> traces;
    traces.reserve(producers.size());
    for (const std::unique_ptr<AccessProducer> &producer : producers)
        traces.push_back(drainProducer(*producer));
    return traces;
}

// ------------------------------------------------------- registry

TEST(KernelRegistry, NamesAndFactoryAgree)
{
    const std::vector<std::string> &names = kernelNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "spmv");
    for (const std::string &name : names) {
        KernelPtr kernel = makeKernel(name);
        ASSERT_NE(kernel, nullptr);
        EXPECT_EQ(kernel->name(), name);
    }
}

TEST(KernelRegistry, UnknownNameThrows)
{
    EXPECT_THROW(makeKernel("sssp"), std::invalid_argument);
    EXPECT_THROW(makeKernel(""), std::invalid_argument);
}

TEST(KernelRegistry, RelabelingPlans)
{
    Graph graph = testGraph();
    // SpMV-shaped kernels touch every edge every sweep: relabeling
    // always applies.
    for (const char *name : {"spmv", "pagerank", "cc"}) {
        KernelPtr kernel = makeKernel(name);
        EXPECT_EQ(kernel->plan().relabeling, Relabeling::kRelabel)
            << name;
        EXPECT_TRUE(kernel->shouldRelabel(graph)) << name;
    }
    // BFS decides per graph (Katana's kAutoRelabel idiom).
    KernelPtr bfs_kernel = makeKernel("bfs");
    EXPECT_EQ(bfs_kernel->plan().relabeling,
              Relabeling::kAutoRelabel);
}

// ---------------------------------------------- spmv back-compat

TEST(SpmvKernel, ProducersMatchLegacyPullProducers)
{
    Graph graph = testGraph();
    TraceOptions options = traceOptions();
    SpmvKernel kernel;
    std::vector<ThreadTrace> from_kernel =
        drainAll(kernel.makeProducers(graph, options));
    std::vector<ThreadTrace> from_legacy =
        drainAll(makePullProducers(graph, options));
    ASSERT_EQ(from_kernel.size(), from_legacy.size());
    for (std::size_t t = 0; t < from_kernel.size(); ++t) {
        ASSERT_EQ(from_kernel[t].size(), from_legacy[t].size())
            << "thread " << t;
        for (std::size_t i = 0; i < from_kernel[t].size(); ++i)
            ASSERT_TRUE(from_kernel[t][i] == from_legacy[t][i])
                << "thread " << t << " access " << i;
    }
}

// ------------------------------- streamed ≡ materialized, per kernel

TEST(KernelTrace, StreamedMatchesMaterializedForEveryKernel)
{
    Graph graph = testGraph();
    TraceOptions trace = traceOptions();
    SimulationOptions sim = simOptions();
    std::vector<EdgeId> owner_degrees =
        degrees(graph, Direction::In);
    std::vector<EdgeId> accessed_degrees =
        degrees(graph, Direction::Out);
    sim.hubDegreeThreshold =
        static_cast<EdgeId>(hubThreshold(graph));
    sim.pushHubDegrees = owner_degrees;
    sim.pullHubDegrees = accessed_degrees;

    for (const std::string &name : kernelNames()) {
        KernelPtr kernel = makeKernel(name);
        // Producers are deterministic: two sets from the same kernel
        // and graph carry identical streams.
        std::vector<ThreadTrace> traces =
            drainAll(kernel->makeProducers(graph, trace));
        MissProfileResult materialized = simulateMissProfile(
            traces, owner_degrees, accessed_degrees, sim);
        MissProfileResult streamed = simulateMissProfile(
            kernel->makeProducers(graph, trace), owner_degrees,
            accessed_degrees, sim);

        EXPECT_GT(streamed.totalAccesses, 0u) << name;
        EXPECT_EQ(streamed.totalAccesses, materialized.totalAccesses)
            << name;
        EXPECT_EQ(streamed.dataAccesses, materialized.dataAccesses)
            << name;
        EXPECT_EQ(streamed.dataMisses, materialized.dataMisses)
            << name;
        EXPECT_EQ(streamed.cache.accesses(),
                  materialized.cache.accesses())
            << name;
        EXPECT_EQ(streamed.cache.misses, materialized.cache.misses)
            << name;
        EXPECT_EQ(streamed.pushPhase.dataAccesses,
                  materialized.pushPhase.dataAccesses)
            << name;
        EXPECT_EQ(streamed.pushPhase.hubMisses,
                  materialized.pushPhase.hubMisses)
            << name;
        EXPECT_EQ(streamed.pullPhase.dataAccesses,
                  materialized.pullPhase.dataAccesses)
            << name;
        EXPECT_EQ(streamed.pullPhase.hubMisses,
                  materialized.pullPhase.hubMisses)
            << name;

        // The acceptance bound: streaming keeps O(chunk) records
        // resident, materialized replay keeps the whole log.
        EXPECT_LE(streamed.peakResidentAccesses, sim.chunkSize)
            << name;
        EXPECT_GE(materialized.peakResidentAccesses,
                  streamed.totalAccesses)
            << name;
    }
}

// ------------------------------------------------------- pagerank

TEST(PageRankKernel, ScoresMatchSolverAndSurviveRelabeling)
{
    Graph base = testGraph();
    PageRankKernel kernel;
    KernelRunInfo info = kernel.run(base);
    const PageRankResult &on_base = kernel.result(base);
    EXPECT_EQ(info.iterations, on_base.iterations);

    PageRankResult reference =
        pageRank(base, PageRankKernel::defaultOptions());
    ASSERT_EQ(on_base.scores.size(), reference.scores.size());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        ASSERT_NEAR(on_base.scores[v], reference.scores[v], 1e-12);

    // Scores are a property of the graph, not its vertex order:
    // reordering must permute them, nothing else.
    ReordererPtr reorderer = makeReorderer("DegreeSort");
    Permutation permutation = reorderer->reorder(base);
    Graph relabeled = applyPermutation(base, permutation);
    PageRankKernel on_relabeled_kernel;
    on_relabeled_kernel.run(relabeled);
    const PageRankResult &on_relabeled =
        on_relabeled_kernel.result(relabeled);
    for (VertexId v = 0; v < base.numVertices(); ++v)
        ASSERT_NEAR(on_relabeled.scores[permutation.newId(v)],
                    on_base.scores[v], 1e-6)
            << "vertex " << v;
}

// ------------------------------------------------------------ bfs

TEST(BfsKernel, FrontierModesAgreeOnDistances)
{
    Graph graph = testGraph();
    BfsOptions push_only;
    push_only.mode = BfsMode::PushOnly;
    BfsOptions pull_only;
    pull_only.mode = BfsMode::PullOnly;

    BfsKernel optimizing;
    BfsKernel push_kernel(kInvalidVertex, push_only);
    BfsKernel pull_kernel(kInvalidVertex, pull_only);
    const BfsResult &opt = optimizing.result(graph);
    const BfsResult &push = push_kernel.result(graph);
    const BfsResult &pull = pull_kernel.result(graph);

    EXPECT_GT(opt.reached, 1u);
    EXPECT_EQ(opt.reached, push.reached);
    EXPECT_EQ(opt.reached, pull.reached);
    ASSERT_EQ(opt.distance.size(), push.distance.size());
    ASSERT_EQ(opt.distance.size(), pull.distance.size());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        ASSERT_EQ(opt.distance[v], push.distance[v]) << v;
        ASSERT_EQ(opt.distance[v], pull.distance[v]) << v;
    }

    // The forced modes really ran single-direction.
    EXPECT_TRUE(std::none_of(push.roundDense.begin(),
                             push.roundDense.end(),
                             [](std::uint8_t d) { return d != 0; }));
    EXPECT_TRUE(std::all_of(pull.roundDense.begin(),
                            pull.roundDense.end(),
                            [](std::uint8_t d) { return d != 0; }));
}

TEST(BfsKernel, TracePhasesFollowRoundDirection)
{
    Graph graph = testGraph();
    TraceOptions trace = traceOptions();

    BfsOptions push_only;
    push_only.mode = BfsMode::PushOnly;
    BfsKernel push_kernel(kInvalidVertex, push_only);
    std::uint64_t push_stores = 0;
    for (const ThreadTrace &thread :
         drainAll(push_kernel.makeProducers(graph, trace))) {
        for (const MemoryAccess &access : thread) {
            EXPECT_EQ(access.phase, AccessPhase::Push);
            push_stores += access.isWrite ? 1 : 0;
        }
    }
    // Each reached non-source vertex is claimed by exactly one store.
    EXPECT_EQ(push_stores, push_kernel.result(graph).reached - 1);

    BfsOptions pull_only;
    pull_only.mode = BfsMode::PullOnly;
    BfsKernel pull_kernel(kInvalidVertex, pull_only);
    std::uint64_t pull_stores = 0;
    for (const ThreadTrace &thread :
         drainAll(pull_kernel.makeProducers(graph, trace))) {
        for (const MemoryAccess &access : thread) {
            EXPECT_EQ(access.phase, AccessPhase::Pull);
            pull_stores += access.isWrite ? 1 : 0;
        }
    }
    EXPECT_EQ(pull_stores, pull_kernel.result(graph).reached - 1);
}

// ------------------------------------------------------------- cc

TEST(CcKernel, LabelsMatchLabelPropagation)
{
    Graph graph = testGraph();
    CcKernel kernel;
    KernelRunInfo info = kernel.run(graph);
    const std::vector<VertexId> &labels = kernel.labels(graph);

    LabelPropagationResult reference = labelPropagation(graph);
    EXPECT_EQ(info.iterations, reference.iterations);
    EXPECT_EQ(kernel.numComponents(graph), reference.numComponents);
    ASSERT_EQ(labels.size(), reference.label.size());

    // Cross-validate the component count against the BFS-based
    // implementation in graph/.
    EXPECT_EQ(kernel.numComponents(graph),
              connectedComponents(graph).numComponents);

    // Same partition: two vertices share a kernel label iff they
    // share a reference label. Both labelings are canonical (min
    // vertex ID in the component), so they are equal outright.
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        ASSERT_EQ(labels[v], reference.label[v]) << v;
}

} // namespace
} // namespace gral
