// Token-tree tests: tokenization kinds, byte-exact line/column
// bookkeeping, and mismatch-tolerant bracket matching.

#include "analyzer/parse.h"

#include <gtest/gtest.h>

#include "analyzer/lexer.h"

namespace gral::analyzer
{
namespace
{

TokenStream
tokens(const std::string &text)
{
    return tokenize(lexCpp(text));
}

const Token &
at(const TokenStream &ts, std::size_t index)
{
    EXPECT_LT(index, ts.tokens.size());
    return ts.tokens[index];
}

TEST(ParseTest, TokenKindsAndText)
{
    TokenStream ts = tokens("int x = 42 + f(y);");
    ASSERT_EQ(ts.tokens.size(), 10u);
    EXPECT_EQ(at(ts, 0).kind, TokenKind::Identifier);
    EXPECT_EQ(at(ts, 0).text, "int");
    EXPECT_EQ(at(ts, 1).text, "x");
    EXPECT_EQ(at(ts, 2).kind, TokenKind::Punct);
    EXPECT_EQ(at(ts, 3).kind, TokenKind::Number);
    EXPECT_EQ(at(ts, 3).text, "42");
    EXPECT_EQ(at(ts, 5).text, "f");
    EXPECT_EQ(at(ts, 6).text, "(");
    EXPECT_EQ(at(ts, 9).text, ";");
}

TEST(ParseTest, LineAndColumnAreByteExact)
{
    TokenStream ts = tokens("int a;\n  foo bar;\n");
    // "foo" starts at line 2, column 3 (1-based).
    ASSERT_GE(ts.tokens.size(), 5u);
    EXPECT_EQ(at(ts, 3).text, "foo");
    EXPECT_EQ(at(ts, 3).line, 2);
    EXPECT_EQ(at(ts, 3).column, 3);
    EXPECT_EQ(at(ts, 4).text, "bar");
    EXPECT_EQ(at(ts, 4).column, 7);
}

TEST(ParseTest, CommentsAndStringsDoNotShiftColumns)
{
    // The lexer blanks comments/string contents but keeps the byte
    // shape, so tokens after them keep their true columns.
    TokenStream ts = tokens("f(/* note */ \"hi\", x);\n");
    // Tokens: f ( "" , x ) ;   — the string literal is one token.
    ASSERT_EQ(ts.tokens.size(), 7u);
    EXPECT_EQ(at(ts, 2).kind, TokenKind::String);
    EXPECT_EQ(at(ts, 4).text, "x");
    EXPECT_EQ(at(ts, 4).column, 20);
}

TEST(ParseTest, MultiCharPunctuators)
{
    TokenStream ts = tokens("a <<= b; c->d; e <=> f; g ... ;");
    std::vector<std::string> puncts;
    for (const Token &token : ts.tokens)
        if (token.kind == TokenKind::Punct)
            puncts.push_back(std::string(token.text));
    EXPECT_EQ(puncts[0], "<<=");
    ASSERT_GE(puncts.size(), 4u);
    bool sawArrow = false, sawSpaceship = false, sawEllipsis = false;
    for (const std::string &p : puncts) {
        sawArrow |= p == "->";
        sawSpaceship |= p == "<=>";
        sawEllipsis |= p == "...";
    }
    EXPECT_TRUE(sawArrow);
    EXPECT_TRUE(sawSpaceship);
    EXPECT_TRUE(sawEllipsis);
}

TEST(ParseTest, NumberWithExponentSign)
{
    TokenStream ts = tokens("double d = 1.5e-3;");
    ASSERT_GE(ts.tokens.size(), 4u);
    EXPECT_EQ(at(ts, 3).kind, TokenKind::Number);
    EXPECT_EQ(at(ts, 3).text, "1.5e-3");
}

TEST(ParseTest, BracketPartnersMatch)
{
    TokenStream ts = tokens("f(a[1], {2});");
    std::size_t open = 0;
    for (std::size_t i = 0; i < ts.tokens.size(); ++i)
        if (ts.tokens[i].text == "(")
            open = i;
    std::size_t close = ts.partner(open);
    EXPECT_EQ(ts.tokens[close].text, ")");
    // The matching ')' is the one right before ';'.
    EXPECT_EQ(ts.tokens[close + 1].text, ";");
    // Inner brackets partner too, nested inside the parens.
    for (std::size_t i = open; i < close; ++i) {
        if (ts.tokens[i].text == "[")
            EXPECT_EQ(ts.tokens[ts.partner(i)].text, "]");
        if (ts.tokens[i].text == "{")
            EXPECT_EQ(ts.tokens[ts.partner(i)].text, "}");
    }
}

TEST(ParseTest, MismatchedBracketsDoNotCrash)
{
    TokenStream ts = tokens("void f() { if (x { g(); }\n");
    // '(' before 'x' never closes; matching must still terminate and
    // leave the stream usable: every reported partner is in range,
    // and the innermost '{' still pairs with the final '}'.
    EXPECT_GT(ts.tokens.size(), 0u);
    for (std::size_t i = 0; i < ts.tokens.size(); ++i)
        EXPECT_LE(ts.partner(i), ts.tokens.size());
    std::size_t brace = ts.tokens.size();
    for (std::size_t i = 0; i < ts.tokens.size(); ++i)
        if (ts.is(i, "{"))
            brace = i; // innermost (last) open brace
    ASSERT_LT(brace, ts.tokens.size());
    std::size_t close = ts.partner(brace);
    ASSERT_LT(close, ts.tokens.size());
    EXPECT_EQ(ts.tokens[close].text, "}");
}

TEST(ParseTest, IsHelpers)
{
    TokenStream ts = tokens("a.b();");
    EXPECT_TRUE(ts.isIdent(0, "a"));
    EXPECT_TRUE(ts.is(1, "."));
    EXPECT_FALSE(ts.isIdent(1, "."));
    EXPECT_FALSE(ts.is(100, ";")); // out of range is safe
}

} // namespace
} // namespace gral::analyzer
