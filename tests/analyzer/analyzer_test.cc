/**
 * @file
 * Driver-level behaviour: baseline parsing/consumption, the
 * write-baseline round trip, deterministic ordering, and parallel
 * scanning producing identical results to a single-threaded run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/baseline.h"

namespace gral::analyzer
{
namespace
{

SourceTree
treeWithOneFinding()
{
    return {{"src/graph/g.cc", "int f() {\n    assert(1);\n"
                               "    return 0;\n}\n"}};
}

TEST(Baseline, ParseSkipsCommentsAndBlanks)
{
    Baseline baseline = Baseline::parse(
        "# comment\n\nsrc/a.cc|raw-assert|assert(1);\n");
    EXPECT_EQ(baseline.size(), 1u);
}

TEST(Baseline, MatchConsumesEntries)
{
    Baseline baseline =
        Baseline::parse("src/a.cc|raw-assert|assert(1);\n");
    const std::string key = "src/a.cc|raw-assert|assert(1);";
    EXPECT_TRUE(baseline.match(key));
    EXPECT_FALSE(baseline.match(key)) << "entry must be consumed";
}

TEST(Baseline, KeyNormalizesWhitespace)
{
    Finding finding{"src/a.cc", 3, 5, "raw-assert", "msg"};
    EXPECT_EQ(Baseline::key(finding, "    assert( 1 );   "),
              "src/a.cc|raw-assert|assert( 1 );");
}

TEST(Baseline, RenderParseRoundTrip)
{
    std::vector<std::string> keys = {
        "src/a.cc|raw-assert|assert(1);",
        "src/b.cc|std-endl|out << std::endl;"};
    Baseline parsed = Baseline::parse(Baseline::render(keys));
    EXPECT_EQ(parsed.size(), 2u);
    for (const std::string &key : keys)
        EXPECT_TRUE(parsed.match(key)) << key;
}

TEST(Analyzer, FindingWithoutBaselineIsNew)
{
    AnalysisResult result =
        analyzeTree(treeWithOneFinding(), Baseline{}, 1);
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_FALSE(result.results[0].baselined);
    EXPECT_EQ(result.newFindings().size(), 1u);
}

TEST(Analyzer, BaselinedFindingDoesNotCountAsNew)
{
    Baseline baseline =
        Baseline::parse("src/graph/g.cc|raw-assert|assert(1);\n");
    AnalysisResult result =
        analyzeTree(treeWithOneFinding(), std::move(baseline), 1);
    ASSERT_EQ(result.results.size(), 1u);
    EXPECT_TRUE(result.results[0].baselined);
    EXPECT_TRUE(result.newFindings().empty());
}

TEST(Analyzer, BaselineIsLineNumberIndependent)
{
    // Same offending line, pushed three lines down: still matches.
    SourceTree tree = {{"src/graph/g.cc",
                        "int a;\nint b;\nint c;\nint f() {\n"
                        "    assert(1);\n    return 0;\n}\n"}};
    Baseline baseline =
        Baseline::parse("src/graph/g.cc|raw-assert|assert(1);\n");
    AnalysisResult result =
        analyzeTree(tree, std::move(baseline), 1);
    EXPECT_TRUE(result.newFindings().empty());
}

TEST(Analyzer, ResultsSortedByPathLineRule)
{
    SourceTree tree = {
        {"src/graph/z.cc", "assert(1);\n"},
        {"src/graph/a.cc",
         "std::cerr << 1;\nassert(2);\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    ASSERT_GE(result.results.size(), 3u);
    std::vector<std::pair<std::string, int>> order;
    for (const SarifResult &r : result.results)
        order.emplace_back(r.finding.path, r.finding.line);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    EXPECT_EQ(result.results.front().finding.path,
              "src/graph/a.cc");
}

TEST(Analyzer, ParallelRunMatchesSerialRun)
{
    // A tree wide enough that the pool actually fans out.
    SourceTree tree;
    for (int i = 0; i < 24; ++i) {
        std::string path =
            "src/graph/f" + std::to_string(i) + ".cc";
        std::string body = i % 3 == 0 ? "assert(1);\n"
                                      : "int x" + std::to_string(i) +
                                            ";\n";
        tree.push_back({path, body});
    }
    std::sort(tree.begin(), tree.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    AnalysisResult serial = analyzeTree(tree, Baseline{}, 1);
    AnalysisResult wide = analyzeTree(tree, Baseline{}, 8);
    ASSERT_EQ(serial.results.size(), wide.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        EXPECT_EQ(serial.results[i].finding.path,
                  wide.results[i].finding.path);
        EXPECT_EQ(serial.results[i].finding.line,
                  wide.results[i].finding.line);
        EXPECT_EQ(serial.results[i].finding.rule,
                  wide.results[i].finding.rule);
    }
    EXPECT_EQ(serial.filesScanned, 24u);
}

TEST(Analyzer, CleanTreeProducesNoFindings)
{
    SourceTree tree = {
        {"src/graph/clean.h",
         "#pragma once\n#include \"common/util.h\"\n"
         "inline int f() { return 0; }\n"},
        {"src/common/util.h", "#pragma once\nint util();\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(result.results.empty());
    EXPECT_EQ(result.filesScanned, 2u);
}

} // namespace
} // namespace gral::analyzer
