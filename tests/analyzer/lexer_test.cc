/**
 * @file
 * Lexer edge cases (tools/analyzer/lexer.h): raw strings with custom
 * delimiters, escaped quotes, line continuations, block comments
 * spanning lines, and `gral-analyzer: off` suppression directives.
 */

#include <gtest/gtest.h>

#include <string>

#include "analyzer/lexer.h"
#include "analyzer/parse.h"

namespace gral::analyzer
{
namespace
{

/** stripped text with lines rejoined (convenience for asserts). */
std::string
strippedOf(const std::string &text)
{
    return lexCpp(text).stripped;
}

TEST(Lexer, PreservesShapeAndPlainCode)
{
    const std::string text = "int x = 1;\nint y = 2;\n";
    LexedFile lexed = lexCpp(text);
    EXPECT_EQ(lexed.stripped, text);
    ASSERT_EQ(lexed.lines.size(), 3u); // two lines + empty tail
    EXPECT_EQ(lexed.lines[0], "int x = 1;");
}

TEST(Lexer, BlanksLineComments)
{
    EXPECT_EQ(strippedOf("int a; // assert(x)\nint b;"),
              "int a;             \nint b;");
}

TEST(Lexer, BlockCommentSpansLinesKeepingLineStructure)
{
    LexedFile lexed = lexCpp("a /* one\n two\n three */ b\nc");
    ASSERT_EQ(lexed.lines.size(), 4u);
    EXPECT_EQ(lexed.lines[0], "a       ");
    EXPECT_EQ(lexed.lines[1], "    ");
    EXPECT_EQ(lexed.lines[2], "          b");
    EXPECT_EQ(lexed.lines[3], "c");
}

TEST(Lexer, StringContentsBlankedButDelimitersKept)
{
    // Quote positions survive so the include extractor can find the
    // target bytes in the original line.
    EXPECT_EQ(strippedOf("f(\"assert(\");"), "f(\"       \");");
}

TEST(Lexer, EscapedQuoteDoesNotEndString)
{
    // The \" inside must not close the literal; the trailing code is
    // intact.
    EXPECT_EQ(strippedOf("s = \"a\\\"b\"; g();"),
              "s = \"    \"; g();");
}

TEST(Lexer, CharLiteralWithEscape)
{
    EXPECT_EQ(strippedOf("c = '\\''; g();"), "c = '  '; g();");
}

TEST(Lexer, RawStringConsumedAsUnit)
{
    // The '"' inside the raw string must not desync the lexer:
    // assert(y) after it is code.
    LexedFile lexed = lexCpp("auto s = R\"(\")\"; assert(y);");
    EXPECT_NE(lexed.stripped.find("assert(y);"), std::string::npos)
        << lexed.stripped;
}

TEST(Lexer, RawStringCustomDelimiter)
{
    // )" appears inside but only )delim" terminates.
    LexedFile lexed =
        lexCpp("auto s = R\"delim(inner)\" )delim\"; code();");
    EXPECT_NE(lexed.stripped.find("code();"), std::string::npos)
        << lexed.stripped;
    EXPECT_EQ(lexed.stripped.find("inner"), std::string::npos);
}

TEST(Lexer, RawStringEncodingPrefixes)
{
    LexedFile lexed = lexCpp("auto s = u8R\"(std::endl)\"; f();");
    EXPECT_EQ(lexed.stripped.find("endl"), std::string::npos);
    EXPECT_NE(lexed.stripped.find("f();"), std::string::npos);
}

TEST(Lexer, IdentifierEndingInRIsNotARawString)
{
    // `myR"..."` is an identifier followed by an ordinary string.
    LexedFile lexed = lexCpp("auto x = myR\"s\"; g();");
    EXPECT_NE(lexed.stripped.find("myR"), std::string::npos);
    EXPECT_NE(lexed.stripped.find("g();"), std::string::npos);
}

TEST(Lexer, RawStringSpanningLinesKeepsLineCount)
{
    LexedFile lexed = lexCpp("a = R\"(one\ntwo\nthree)\";\nb;");
    ASSERT_EQ(lexed.lines.size(), 4u);
    EXPECT_EQ(lexed.lines[3], "b;");
}

TEST(Lexer, LineContinuationExtendsLineComment)
{
    // The backslash-newline keeps the second physical line inside
    // the comment, so `assert(x);` there is not code.
    LexedFile lexed = lexCpp("// hidden \\\nassert(x);\nreal();");
    EXPECT_EQ(lexed.stripped.find("assert"), std::string::npos)
        << lexed.stripped;
    EXPECT_NE(lexed.stripped.find("real();"), std::string::npos);
}

TEST(Lexer, LineContinuationInsideString)
{
    LexedFile lexed = lexCpp("s = \"a\\\nb\"; g();");
    EXPECT_NE(lexed.stripped.find("g();"), std::string::npos);
    ASSERT_EQ(lexed.lines.size(), 2u);
}

// ------------------------------------------------------- suppressions

TEST(Lexer, TrailingSuppressionCoversItsOwnLine)
{
    LexedFile lexed =
        lexCpp("bad();\ncode(); // gral-analyzer: off(raw-cerr)\n");
    EXPECT_TRUE(lexed.isSuppressed(2, "raw-cerr"));
    EXPECT_FALSE(lexed.isSuppressed(1, "raw-cerr"));
    EXPECT_FALSE(lexed.isSuppressed(2, "std-endl"));
}

TEST(Lexer, StandaloneSuppressionCoversNextLine)
{
    LexedFile lexed =
        lexCpp("// gral-analyzer: off(hot-path-alloc)\nalloc();\n");
    EXPECT_FALSE(lexed.isSuppressed(1, "hot-path-alloc"));
    EXPECT_TRUE(lexed.isSuppressed(2, "hot-path-alloc"));
}

TEST(Lexer, SuppressionWithMultipleRules)
{
    LexedFile lexed = lexCpp(
        "x(); // gral-analyzer: off(raw-cerr, std-endl)\n");
    EXPECT_TRUE(lexed.isSuppressed(1, "raw-cerr"));
    EXPECT_TRUE(lexed.isSuppressed(1, "std-endl"));
    EXPECT_FALSE(lexed.isSuppressed(1, "raw-assert"));
}

TEST(Lexer, BareOffSuppressesEveryRule)
{
    LexedFile lexed = lexCpp("x(); // gral-analyzer: off\n");
    EXPECT_TRUE(lexed.isSuppressed(1, "raw-cerr"));
    EXPECT_TRUE(lexed.isSuppressed(1, "layering"));
}

TEST(Lexer, BlockCommentSuppression)
{
    LexedFile lexed =
        lexCpp("/* gral-analyzer: off(raw-new) */\nnew_thing();\n");
    EXPECT_TRUE(lexed.isSuppressed(2, "raw-new"));
}

TEST(Lexer, OffNextLineTargetsTheFollowingLine)
{
    LexedFile lexed = lexCpp(
        "a(); // gral-analyzer: off-next-line(std-endl)\nb();\n");
    EXPECT_FALSE(lexed.isSuppressed(1, "std-endl"));
    EXPECT_TRUE(lexed.isSuppressed(2, "std-endl"));
}

TEST(Lexer, OffNextLineFromStandaloneComment)
{
    LexedFile lexed = lexCpp(
        "// gral-analyzer: off-next-line(guarded-by)\nx_ = 1;\n");
    EXPECT_TRUE(lexed.isSuppressed(2, "guarded-by"));
    EXPECT_FALSE(lexed.isSuppressed(1, "guarded-by"));
}

TEST(Lexer, OffNextLineAfterMultiLineBlockComment)
{
    // The "next line" counts from where the comment *ends*.
    LexedFile lexed = lexCpp(
        "/* note\n   gral-analyzer: off-next-line(raw-new) */\n"
        "new_thing();\nafter();\n");
    EXPECT_TRUE(lexed.isSuppressed(3, "raw-new"));
    EXPECT_FALSE(lexed.isSuppressed(4, "raw-new"));
}

TEST(Lexer, OffNextLineIsNotMistakenForBareOff)
{
    // `off-next-line` must not parse as bare `off` (which would
    // suppress every rule on the comment's own line).
    LexedFile lexed = lexCpp(
        "y(); // gral-analyzer: off-next-line(raw-cerr)\nz();\n");
    EXPECT_FALSE(lexed.isSuppressed(1, "raw-cerr"));
    EXPECT_FALSE(lexed.isSuppressed(1, "std-endl"));
    EXPECT_TRUE(lexed.isSuppressed(2, "raw-cerr"));
    EXPECT_FALSE(lexed.isSuppressed(2, "std-endl"));
}

// ------------------------------------ byte-exact positions (parser)

TEST(Lexer, SplicedMacroKeepsBytePositions)
{
    // A backslash-newline inside a macro definition: the lexer keeps
    // one byte column per physical byte, so tokens on the next
    // physical line report their true line and column.
    const std::string text = "#define EMIT(x) \\\n"
                             "    sink(x)\n"
                             "int after = 1;\n";
    LexedFile lexed = lexCpp(text);
    ASSERT_EQ(lexed.lines.size(), 4u);
    EXPECT_EQ(lexed.lines[1], "    sink(x)");

    TokenStream ts = tokenize(lexed);
    bool sawSink = false, sawAfter = false;
    for (const Token &token : ts.tokens) {
        if (token.text == "sink") {
            sawSink = true;
            EXPECT_EQ(token.line, 2);
            EXPECT_EQ(token.column, 5);
        }
        if (token.text == "after") {
            sawAfter = true;
            EXPECT_EQ(token.line, 3);
            EXPECT_EQ(token.column, 5);
        }
    }
    EXPECT_TRUE(sawSink);
    EXPECT_TRUE(sawAfter);
}

TEST(Lexer, StringAdjacentToRawStringKeepsPositions)
{
    // "abc" R"(def)" — adjacent ordinary and raw literals; the token
    // after both must keep its byte-exact line and column.
    const std::string text = "auto s = \"abc\" R\"(def)\" ; tail;\n";
    LexedFile lexed = lexCpp(text);
    EXPECT_EQ(lexed.stripped.size(), text.size());
    EXPECT_EQ(lexed.stripped.find("abc"), std::string::npos);
    EXPECT_EQ(lexed.stripped.find("def"), std::string::npos);

    TokenStream ts = tokenize(lexed);
    bool sawTail = false;
    for (const Token &token : ts.tokens)
        if (token.text == "tail") {
            sawTail = true;
            EXPECT_EQ(token.line, 1);
            EXPECT_EQ(token.column, 27);
            EXPECT_EQ(token.offset, 26u);
        }
    EXPECT_TRUE(sawTail);
}

TEST(Lexer, MultiLineRawStringShiftsFollowingLineAndColumn)
{
    const std::string text = "a = R\"(one\ntwo)\"; b = 2;\n";
    LexedFile lexed = lexCpp(text);
    TokenStream ts = tokenize(lexed);
    bool sawB = false;
    for (const Token &token : ts.tokens)
        if (token.text == "b") {
            sawB = true;
            EXPECT_EQ(token.line, 2);
            EXPECT_EQ(token.column, 8); // after `two)";` + space
        }
    EXPECT_TRUE(sawB);
}

} // namespace
} // namespace gral::analyzer
