// Positive fixture: binding a view to storage owned by a temporary.
// The temporary Graph returned by makeGraph() dies at the end of the
// declaration statement, so the view dangles immediately. Expected
// finding: view-from-temporary anchored at the `makeGraph` token
// (line 16, column 26), fixable with --fix into
// `Graph dangling = makeGraph();`.

namespace gral
{

Graph makeGraph();

void
viewFromTemporary()
{
    GraphView dangling = makeGraph().view();
    (void)dangling;
}

} // namespace gral
