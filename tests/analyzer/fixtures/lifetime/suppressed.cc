// Suppressed twin of every positive lifetime fixture: the same four
// defects, each acknowledged with a justified off-next-line
// suppression at its anchor line. Expected: zero findings.

namespace gral
{

Graph makeGraph();
Graph loadGraph();
void replay(const GraphView &view);
void consume(std::span<const int> window);

void
suppressedFromTemporary()
{
    // Known-dangling by construction; exercised only for its type.
    // gral-analyzer: off-next-line(view-from-temporary)
    GraphView dangling = makeGraph().view();
    (void)dangling;
}

void
suppressedOutlivesStorage()
{
    GraphView view;
    {
        Graph graph = loadGraph();
        view = graph.view();
    }
    // The replay target re-checks liveness itself.
    // gral-analyzer: off-next-line(view-outlives-storage)
    replay(view);
}

GraphView
suppressedReturnDangling()
{
    Graph graph = loadGraph();
    // Caller immediately materializes; acknowledged hand-off.
    // gral-analyzer: off-next-line(return-dangling-view)
    return graph.view();
}

void
suppressedInvalidated()
{
    std::vector<int> values;
    values.push_back(1);
    std::span<const int> window = values;
    values.push_back(2);
    // Capacity was reserved ahead of time; push_back cannot move it.
    // gral-analyzer: off-next-line(view-invalidated-by-mutation)
    consume(window);
}

} // namespace gral
