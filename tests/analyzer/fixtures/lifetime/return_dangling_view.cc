// Positive fixture: returning views that refer into storage which
// dies with the function. Two variants, both anchored at their
// `return` token:
//  - a view of a local owner (line 17, column 5);
//  - a view of a by-value parameter (line 23, column 5), whose
//    advice suggests a const reference + GRAL_LIFETIMEBOUND.

namespace gral
{

Graph loadGraph();

GraphView
viewOfLocal()
{
    Graph graph = loadGraph();
    return graph.view();
}

GraphView
viewOfValueParam(Graph graph)
{
    return graph.view();
}

} // namespace gral
