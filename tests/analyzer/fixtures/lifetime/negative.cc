// Negative fixture: correct view usage the lifetime pack must stay
// quiet on. Expected: zero lifetime findings.

namespace gral
{

Graph loadGraph();
void replay(const GraphView &view);
GraphView wholeProgramView();

// A view of a named owner used inside the owner's scope is fine.
void
viewOfNamedOwner()
{
    Graph graph = loadGraph();
    GraphView view = graph.view();
    replay(view);
}

// Returning an owning object (not a view) is fine.
Graph
materializedCopy()
{
    Graph graph = loadGraph();
    GraphView view = graph.view();
    return materializeGraph(view);
}

// A view of a caller-owned reference parameter outlives the call.
GraphView
viewOfReference(const Graph &graph)
{
    return graph.view();
}

// Rebinding a view after the mutation is the documented idiom.
void
rebindAfterMutation()
{
    std::vector<int> values;
    std::span<const int> window = values;
    values.push_back(1);
    window = values;
    (void)window;
}

// A view returned by value with unknown backing is not flagged.
void
viewByValue()
{
    GraphView view = wholeProgramView();
    replay(view);
}

} // namespace gral
