// Positive fixture: a view used after its backing owner's scope
// closed. `view` is rebound to `graph`'s storage inside the inner
// block; once that block ends the storage is gone. Expected finding:
// view-outlives-storage anchored at the first use after the scope
// closed — the `view` argument token (line 21, column 12).

namespace gral
{

Graph loadGraph();
void replay(const GraphView &view);

void
viewOutlivesStorage()
{
    GraphView view;
    {
        Graph graph = loadGraph();
        view = graph.view();
    }
    replay(view);
}

} // namespace gral
