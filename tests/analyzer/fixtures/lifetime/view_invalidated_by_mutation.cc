// Positive fixture: a span into a vector used after a push_back that
// may have reallocated the vector's storage. Expected finding:
// view-invalidated-by-mutation anchored at the first use after the
// mutation — the `window` argument token (line 18, column 13).

namespace gral
{

void consume(std::span<const int> window);

void
viewInvalidatedByMutation()
{
    std::vector<int> values;
    values.push_back(1);
    std::span<const int> window = values;
    values.push_back(2);
    consume(window);
}

} // namespace gral
