// Fixture: guard name does not match the path-derived
// GRAL_GRAPH_BAD_GUARD_H, and std::endl is banned everywhere.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

inline void
report(std::ostream &out)
{
    out << "done" << std::endl; // fires: std-endl
}

#endif // WRONG_GUARD_NAME_H
