// Fixture: raw-assert in its firing and non-firing forms.

void
plain()
{
    assert(a == b); // fires: raw assert
}

#include <cassert> // fires: banned header

static_assert(sizeof(int) == 4); // clean: compile-time assert

// replacement for raw assert() -- clean: only a comment

void
strings()
{
    GRAL_CHECK(a == b) << "assert("; // clean: inside a string
    const char *s = R"(assert(ok))"; // clean: inside a raw string
    const char *t = R"delim(assert(ok))delim"; // clean too
}

void
desync()
{
    // The quote inside this raw string must not desync the lexer:
    auto tricky = R"(")";
    assert(real); // fires: genuine assert after the raw string
}
