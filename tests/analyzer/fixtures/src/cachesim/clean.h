// Fixture: a fully clean header — neither linter may report it.
#pragma once

inline int
cached(int x)
{
    return x + 1;
}
