// Fixture: vertex-id-type in firing and non-firing forms.

void
loops(const Graph &g, const std::vector<Range> &parts)
{
    for (uint32_t v = 0; v < g.numVertices(); ++v) // fires
        touch(v);

    for (std::size_t v = 0; v < g.numVertices(); ++v) // fires
        touch(v);

    for (VertexId v = 0; v < g.numVertices(); ++v) // clean
        touch(v);

    for (size_t i = 0; i < parts.size(); ++i) // clean: not vertices
        touch(i);
}
