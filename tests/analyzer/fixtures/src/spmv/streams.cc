// Fixture: raw-cerr fires on real code, not on literals.

void
report(int failures)
{
    std::cerr << "failures: " << failures << "\n"; // fires
    std::clog << "note\n";                         // clean
    const char *doc = R"x(std::cerr << "oops")x";  // clean: literal
    log(doc);
}
