// Fixture: tools/ is in scope for std-endl only — the assert and
// std::cerr below must NOT be reported by either linter.

int
main()
{
    assert(argc > 0);               // clean here: src/-only rule
    std::cerr << "starting\n";      // clean here: src/-only rule
    std::cout << "done" << std::endl; // fires: std-endl
    return 0;
}
