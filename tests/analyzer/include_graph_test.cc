/**
 * @file
 * Include-graph extraction, module mapping, cycle detection, and the
 * layering rule end-to-end through analyzeTree() — including the
 * acceptance fixture: a src/graph file including src/analysis must
 * produce a layering finding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/include_graph.h"
#include "analyzer/lexer.h"

namespace gral::analyzer
{
namespace
{

std::vector<IncludeDirective>
includesOf(const std::string &text)
{
    LexedFile lexed = lexCpp(text);
    std::vector<std::string> original;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '\n') {
            original.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return extractIncludes(lexed.lines, original);
}

bool
hasFinding(const AnalysisResult &result, const std::string &path,
           const std::string &rule)
{
    return std::any_of(result.results.begin(), result.results.end(),
                       [&](const SarifResult &r) {
                           return r.finding.path == path &&
                                  r.finding.rule == rule;
                       });
}

TEST(IncludeGraph, ExtractsQuotedIncludesWithLines)
{
    std::vector<IncludeDirective> incs = includesOf(
        "#include \"graph/csr.h\"\n"
        "#include <vector>\n"
        "// #include \"obs/log.h\"\n"
        "#include \"common/check.h\"\n");
    ASSERT_EQ(incs.size(), 2u);
    EXPECT_EQ(incs[0].target, "graph/csr.h");
    EXPECT_EQ(incs[0].line, 1);
    EXPECT_EQ(incs[1].target, "common/check.h");
    EXPECT_EQ(incs[1].line, 4);
}

TEST(IncludeGraph, IgnoresIncludeInsideStringLiteral)
{
    std::vector<IncludeDirective> incs =
        includesOf("auto s = \"#include \\\"x.h\\\"\";\n");
    EXPECT_TRUE(incs.empty());
}

TEST(IncludeGraph, ModuleOf)
{
    EXPECT_EQ(moduleOf("src/graph/csr.h"), "graph");
    EXPECT_EQ(moduleOf("src/cachesim/cache.cc"), "cachesim");
    EXPECT_EQ(moduleOf("tools/gral_cli.cc"), "tools");
    EXPECT_EQ(moduleOf("bench/bench_main.cc"), "bench");
    // The perf sublayer is its own DAG node; obs core stays "obs".
    EXPECT_EQ(moduleOf("src/obs/perf/counters.h"), "obs/perf");
    EXPECT_EQ(moduleOf("src/obs/perf/syscall.cc"), "obs/perf");
    EXPECT_EQ(moduleOf("src/obs/metrics.h"), "obs");
    EXPECT_EQ(moduleOf("src/obs/span.cc"), "obs");
    // Likewise the storage sublayer; graph core stays "graph".
    EXPECT_EQ(moduleOf("src/graph/storage/gralb.h"), "graph/storage");
    EXPECT_EQ(moduleOf("src/graph/storage/varint.cc"),
              "graph/storage");
    EXPECT_EQ(moduleOf("src/graph/view.h"), "graph");
    EXPECT_EQ(moduleOf("src/exec/thread_pool.h"), "exec");
}

TEST(IncludeGraph, AllowedIncludesMatchTheDag)
{
    const std::set<std::string> *graph = allowedIncludes("graph");
    ASSERT_NE(graph, nullptr);
    EXPECT_TRUE(graph->count("common"));
    EXPECT_TRUE(graph->count("obs"));
    EXPECT_FALSE(graph->count("analysis"));
    EXPECT_FALSE(graph->count("cachesim"));

    const std::set<std::string> *analysis =
        allowedIncludes("analysis");
    ASSERT_NE(analysis, nullptr);
    EXPECT_TRUE(analysis->count("graph"));
    EXPECT_TRUE(analysis->count("metrics"));
    EXPECT_TRUE(analysis->count("kernels"));

    const std::set<std::string> *kernels = allowedIncludes("kernels");
    ASSERT_NE(kernels, nullptr);
    EXPECT_TRUE(kernels->count("algorithms"));
    EXPECT_TRUE(kernels->count("spmv"));
    EXPECT_TRUE(kernels->count("cachesim"));
    EXPECT_FALSE(kernels->count("metrics"));
    EXPECT_FALSE(kernels->count("analysis"));

    // De-welded: the metrics layer is kernel-agnostic and may not
    // reach back into any workload module.
    const std::set<std::string> *metrics = allowedIncludes("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_TRUE(metrics->count("cachesim"));
    EXPECT_FALSE(metrics->count("spmv"));
    EXPECT_FALSE(metrics->count("kernels"));

    // obs core must stay syscall-free: it may not include obs/perf,
    // while obs/perf may use obs (metrics, spans). Only the modules
    // that measure (spmv's pool, the experiment runner) get the
    // sublayer.
    const std::set<std::string> *obs = allowedIncludes("obs");
    ASSERT_NE(obs, nullptr);
    EXPECT_FALSE(obs->count("obs/perf"));
    const std::set<std::string> *perf = allowedIncludes("obs/perf");
    ASSERT_NE(perf, nullptr);
    EXPECT_TRUE(perf->count("obs"));
    EXPECT_TRUE(perf->count("common"));
    EXPECT_FALSE(perf->count("graph"));
    const std::set<std::string> *spmv = allowedIncludes("spmv");
    ASSERT_NE(spmv, nullptr);
    EXPECT_TRUE(spmv->count("obs/perf"));
    EXPECT_TRUE(allowedIncludes("analysis")->count("obs/perf"));
    EXPECT_FALSE(allowedIncludes("cachesim")->count("obs/perf"));

    // graph core stays format- and syscall-free: it may use the
    // execution substrate (parallel builder) but never reach up into
    // its own storage sublayer; storage may use graph (views, types)
    // but not exec. Consumers above (spmv, kernels, analysis) get
    // the sublayer; reorder and cachesim do not.
    const std::set<std::string> *graphDeps = allowedIncludes("graph");
    ASSERT_NE(graphDeps, nullptr);
    EXPECT_TRUE(graphDeps->count("exec"));
    EXPECT_FALSE(graphDeps->count("graph/storage"));
    const std::set<std::string> *storage =
        allowedIncludes("graph/storage");
    ASSERT_NE(storage, nullptr);
    EXPECT_TRUE(storage->count("graph"));
    EXPECT_TRUE(storage->count("common"));
    EXPECT_FALSE(storage->count("exec"));
    EXPECT_FALSE(storage->count("spmv"));
    const std::set<std::string> *exec = allowedIncludes("exec");
    ASSERT_NE(exec, nullptr);
    EXPECT_TRUE(exec->count("obs"));
    EXPECT_FALSE(exec->count("graph"));
    EXPECT_TRUE(spmv->count("graph/storage"));
    EXPECT_TRUE(allowedIncludes("kernels")->count("graph/storage"));
    EXPECT_TRUE(allowedIncludes("analysis")->count("graph/storage"));
    EXPECT_FALSE(allowedIncludes("reorder")->count("graph/storage"));
    EXPECT_FALSE(allowedIncludes("cachesim")->count("graph/storage"));
}

TEST(IncludeGraph, ResolvesSrcPrefixedTargets)
{
    std::vector<std::string> files = {"src/graph/a.h",
                                      "src/common/b.h"};
    std::vector<std::vector<IncludeDirective>> incs = {
        {{"common/b.h", 1}}, {}};
    IncludeGraph graph(files, incs);
    ASSERT_EQ(graph.edges().size(), 1u);
    EXPECT_EQ(graph.edges()[0].from, "src/graph/a.h");
    EXPECT_EQ(graph.edges()[0].to, "src/common/b.h");
}

TEST(IncludeGraph, FindsTwoFileCycle)
{
    std::vector<std::string> files = {"src/graph/a.h",
                                      "src/graph/b.h"};
    std::vector<std::vector<IncludeDirective>> incs = {
        {{"graph/b.h", 1}}, {{"graph/a.h", 1}}};
    IncludeGraph graph(files, incs);
    std::vector<std::vector<std::string>> cycles =
        graph.findCycles();
    ASSERT_EQ(cycles.size(), 1u);
    // Closed walk: first element repeated at the end.
    EXPECT_EQ(cycles[0].front(), cycles[0].back());
    EXPECT_NE(std::find(cycles[0].begin(), cycles[0].end(),
                        "src/graph/a.h"),
              cycles[0].end());
    EXPECT_NE(std::find(cycles[0].begin(), cycles[0].end(),
                        "src/graph/b.h"),
              cycles[0].end());
}

TEST(IncludeGraph, DagHasNoCycles)
{
    std::vector<std::string> files = {"src/graph/a.h",
                                      "src/common/b.h"};
    std::vector<std::vector<IncludeDirective>> incs = {
        {{"common/b.h", 1}}, {}};
    IncludeGraph graph(files, incs);
    EXPECT_TRUE(graph.findCycles().empty());
}

// ----------------------------------------------- layering end-to-end

/**
 * Acceptance fixture from the issue: the layering rule must
 * demonstrably fail on a file that includes src/analysis from
 * src/graph.
 */
TEST(Layering, GraphIncludingAnalysisFails)
{
    SourceTree tree = {
        {"src/analysis/report.h", "#pragma once\nint report();\n"},
        {"src/graph/evil.h",
         "#pragma once\n#include \"analysis/report.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(hasFinding(result, "src/graph/evil.h", "layering"))
        << "layering finding missing";
    ASSERT_FALSE(result.newFindings().empty());
    const Finding *f = result.newFindings().front();
    EXPECT_EQ(f->line, 2);
}

TEST(Layering, DownwardIncludeIsClean)
{
    SourceTree tree = {
        {"src/common/util.h", "#pragma once\nint util();\n"},
        {"src/graph/fine.h",
         "#pragma once\n#include \"common/util.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_FALSE(hasFinding(result, "src/graph/fine.h", "layering"));
}

TEST(Layering, SrcMustNotIncludeBench)
{
    SourceTree tree = {
        {"bench/harness.h", "#pragma once\nint bench();\n"},
        {"src/graph/uses_bench.h",
         "#pragma once\n#include \"bench/harness.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(
        hasFinding(result, "src/graph/uses_bench.h", "layering"));
}

TEST(Layering, CycleReported)
{
    SourceTree tree = {
        {"src/graph/a.h", "#pragma once\n#include \"graph/b.h\"\n"},
        {"src/graph/b.h", "#pragma once\n#include \"graph/a.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    bool cycle_found =
        hasFinding(result, "src/graph/a.h", "include-cycle") ||
        hasFinding(result, "src/graph/b.h", "include-cycle");
    EXPECT_TRUE(cycle_found);
}

TEST(Layering, ObsCoreMayNotIncludePerfSublayer)
{
    SourceTree tree = {
        {"src/obs/perf/counters.h", "#pragma once\nint read();\n"},
        {"src/obs/export.h",
         "#pragma once\n#include \"obs/perf/counters.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(hasFinding(result, "src/obs/export.h", "layering"));
}

TEST(Layering, PerfSublayerMayUseObsCore)
{
    SourceTree tree = {
        {"src/obs/metrics.h", "#pragma once\nint metrics();\n"},
        {"src/obs/perf/scope.h",
         "#pragma once\n#include \"obs/metrics.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_FALSE(
        hasFinding(result, "src/obs/perf/scope.h", "layering"));
}

TEST(Layering, SuppressionSilencesTheFinding)
{
    SourceTree tree = {
        {"src/analysis/report.h", "#pragma once\nint report();\n"},
        {"src/graph/evil.h",
         "#pragma once\n"
         "// gral-analyzer: off(layering)\n"
         "#include \"analysis/report.h\"\n"},
    };
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_FALSE(hasFinding(result, "src/graph/evil.h", "layering"));
}

} // namespace
} // namespace gral::analyzer
