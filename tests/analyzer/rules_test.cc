/**
 * @file
 * Rule-engine fixtures. The convention-rule table descends from the
 * SELF_TEST_CASES of the retired Python linter (an equivalence ctest
 * proved the two implementations agreed before the shim was
 * removed); this file unit-tests the analyzer directly, plus the
 * rules that only ever existed here: hot-path-*, check-side-effect,
 * raw-new.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "analyzer/lexer.h"
#include "analyzer/rules.h"

namespace gral::analyzer
{
namespace
{

std::vector<Finding>
runOn(const std::string &path, const std::string &text)
{
    std::vector<Finding> findings;
    runFileRules(path, lexCpp(text), findings);
    return findings;
}

int
countRule(const std::vector<Finding> &findings,
          const std::string &rule)
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

// -------------------------------------------- convention-rule table

struct ConventionCase
{
    const char *name;
    const char *path;
    const char *text;
    const char *rule;   // rule expected to fire (or checked absent)
    int expected;       // number of findings for that rule
};

const ConventionCase kConventionCases[] = {
    {"raw assert fires", "src/graph/a.cc", "assert(x > 0);\n",
     "raw-assert", 1},
    {"static_assert is fine", "src/graph/a.cc",
     "static_assert(sizeof(int) == 4);\n", "raw-assert", 0},
    {"cassert include fires", "src/graph/a.cc",
     "#include <cassert>\n", "raw-assert", 1},
    {"GRAL_CHECK is fine", "src/graph/a.cc",
     "GRAL_CHECK(x > 0);\n", "raw-assert", 0},
    {"assert in comment ignored", "src/graph/a.cc",
     "// assert(x);\nint y;\n", "raw-assert", 0},
    {"assert in string ignored", "src/graph/a.cc",
     "auto s = \"assert(x)\";\n", "raw-assert", 0},
    {"assert in raw string ignored", "src/graph/a.cc",
     "auto s = R\"(assert(x))\";\n", "raw-assert", 0},
    {"assert after raw string still caught", "src/graph/a.cc",
     "auto s = R\"(\")\";\nassert(broken);\n", "raw-assert", 1},
    {"my_assert is fine", "src/graph/a.cc", "my_assert(x);\n",
     "raw-assert", 0},

    {"uint32_t loop over numVertices fires", "src/metrics/m.cc",
     "for (uint32_t v = 0; v < g.numVertices(); ++v) {}\n",
     "vertex-id-type", 1},
    {"std::size_t loop over numVertices fires", "src/metrics/m.cc",
     "for (std::size_t v = 0; v < numVertices(); ++v) {}\n",
     "vertex-id-type", 1},
    {"VertexId loop is fine", "src/metrics/m.cc",
     "for (VertexId v = 0; v < g.numVertices(); ++v) {}\n",
     "vertex-id-type", 0},
    {"size_t loop over parts is fine", "src/metrics/m.cc",
     "for (size_t i = 0; i < parts.size(); ++i) {}\n",
     "vertex-id-type", 0},

    {"std::endl fires in src", "src/obs/o.cc",
     "out << \"x\" << std::endl;\n", "std-endl", 1},
    {"std::endl fires in tools", "tools/t.cc",
     "out << std::endl;\n", "std-endl", 1},
    {"newline char is fine", "src/obs/o.cc",
     "out << \"x\\n\";\n", "std-endl", 0},

    {"std::cerr fires in src", "src/graph/g.cc",
     "std::cerr << \"oops\";\n", "raw-cerr", 1},
    {"std::clog is fine", "src/graph/g.cc",
     "std::clog << \"note\";\n", "raw-cerr", 0},
    {"cerr in raw string ignored but code use caught",
     "src/graph/g.cc",
     "auto s = R\"x(std::cerr << \"oops\")x\";\nstd::cerr << s;\n",
     "raw-cerr", 1},

    {"pragma once is fine", "src/graph/h.h",
     "#pragma once\nint x;\n", "include-guard", 0},
    {"matching guard is fine", "src/graph/csr.h",
     "#ifndef GRAL_GRAPH_CSR_H\n#define GRAL_GRAPH_CSR_H\n"
     "#endif\n",
     "include-guard", 0},
    {"missing guard fires", "src/graph/h.h", "int x;\n",
     "include-guard", 1},
    {"wrong guard name fires", "src/graph/csr.h",
     "#ifndef WRONG_NAME_H\n#define WRONG_NAME_H\n#endif\n",
     "include-guard", 1},
    {"ifndef without define fires", "src/graph/csr.h",
     "#ifndef GRAL_GRAPH_CSR_H\nint x;\n#endif\n", "include-guard",
     1},
    {"guard not required for .cc", "src/graph/csr.cc", "int x;\n",
     "include-guard", 0},
};

class ConventionRules
    : public ::testing::TestWithParam<ConventionCase>
{
};

TEST_P(ConventionRules, TableCase)
{
    const ConventionCase &c = GetParam();
    std::vector<Finding> findings = runOn(c.path, c.text);
    EXPECT_EQ(countRule(findings, c.rule), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ConventionRules, ::testing::ValuesIn(kConventionCases),
    [](const ::testing::TestParamInfo<ConventionCase> &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

// ----------------------------------------------------- rule scoping

TEST(RuleScoping, ToolsOnlyGetStdEndl)
{
    // assert + cerr in tools/ are out of scope; std::endl is not.
    std::vector<Finding> findings = runOn(
        "tools/x.cc",
        "assert(x);\nstd::cerr << 1;\nout << std::endl;\n");
    EXPECT_EQ(countRule(findings, "raw-assert"), 0);
    EXPECT_EQ(countRule(findings, "raw-cerr"), 0);
    EXPECT_EQ(countRule(findings, "std-endl"), 1);
}

TEST(RuleScoping, HotPathRulesOnlyInCachesimAndSpmv)
{
    const std::string loop =
        "for (int i = 0; i < n; ++i) {\n"
        "    auto p = std::make_unique<int>(i);\n"
        "}\n";
    EXPECT_EQ(countRule(runOn("src/cachesim/c.cc", loop),
                        "hot-path-alloc"),
              1);
    EXPECT_EQ(countRule(runOn("src/spmv/s.cc", loop),
                        "hot-path-alloc"),
              1);
    EXPECT_EQ(countRule(runOn("src/graph/g.cc", loop),
                        "hot-path-alloc"),
              0);
    // The storage sublayer's decode loop runs once per traversed
    // vertex, and the pool's dispatch loop once per task: both are
    // hot scopes even though graph core is not.
    EXPECT_EQ(countRule(runOn("src/graph/storage/varint.cc", loop),
                        "hot-path-alloc"),
              1);
    EXPECT_EQ(countRule(runOn("src/exec/thread_pool.cc", loop),
                        "hot-path-alloc"),
              1);
}

// ------------------------------------------------- hot-path details

TEST(HotPath, MetricsLookupInsideLoopFires)
{
    std::vector<Finding> findings = runOn(
        "src/cachesim/c.cc",
        "while (run) {\n"
        "    registry.counter(\"cachesim.hits\").add(1);\n"
        "}\n");
    EXPECT_EQ(countRule(findings, "hot-path-metrics"), 1);
}

TEST(HotPath, MetricsLookupOutsideLoopIsFine)
{
    std::vector<Finding> findings = runOn(
        "src/cachesim/c.cc",
        "auto &hits = registry.counter(\"cachesim.hits\");\n"
        "while (run) {\n"
        "    hits.add(1);\n"
        "}\n");
    EXPECT_EQ(countRule(findings, "hot-path-metrics"), 0);
}

TEST(HotPath, SpanInsideLoopFires)
{
    std::vector<Finding> findings =
        runOn("src/spmv/s.cc",
              "for (auto &x : xs) {\n    GRAL_SPAN(\"iter\");\n}\n");
    EXPECT_EQ(countRule(findings, "hot-path-span"), 1);
}

TEST(HotPath, SingleStatementLoopBodyCounts)
{
    std::vector<Finding> findings = runOn(
        "src/spmv/s.cc",
        "for (int i = 0; i < n; ++i)\n"
        "    sinks.push_back(std::make_unique<Sink>());\n");
    EXPECT_EQ(countRule(findings, "hot-path-alloc"), 1);
}

TEST(HotPath, PerfReadInsideLoopFires)
{
    std::vector<Finding> findings = runOn(
        "src/spmv/s.cc",
        "for (std::size_t i = 0; i < n; ++i) {\n"
        "    PerfGroupReading r = group.readCounters();\n"
        "    use(r);\n"
        "}\n");
    EXPECT_EQ(countRule(findings, "hot-path-perf-read"), 1);
}

TEST(HotPath, PerfReadReachableFromLoopFires)
{
    std::vector<Finding> findings = runOn(
        "src/cachesim/c.cc",
        "void sample() { last = group->readCounters(); }\n"
        "void drain() {\n"
        "    while (running) {\n"
        "        step();\n"
        "        sample();\n"
        "    }\n"
        "}\n");
    EXPECT_EQ(countRule(findings, "hot-path-perf-read"), 1);
}

TEST(HotPath, PerfReadOutsideLoopIsFine)
{
    std::vector<Finding> findings = runOn(
        "src/spmv/s.cc",
        "group.start();\n"
        "for (std::size_t i = 0; i < n; ++i)\n"
        "    work(i);\n"
        "group.stop();\n"
        "PerfGroupReading r = group.readCounters();\n");
    EXPECT_EQ(countRule(findings, "hot-path-perf-read"), 0);
}

TEST(HotPath, SuppressionCommentSilences)
{
    std::vector<Finding> findings = runOn(
        "src/spmv/s.cc",
        "for (int i = 0; i < n; ++i) {\n"
        "    // gral-analyzer: off(hot-path-alloc)\n"
        "    sinks.push_back(std::make_unique<Sink>());\n"
        "}\n");
    EXPECT_EQ(countRule(findings, "hot-path-alloc"), 0);
}

TEST(LoopBodyLines, TracksNesting)
{
    std::vector<std::string> lines = {
        "void f() {",                 // 1
        "    setup();",               // 2
        "    for (int i = 0; i < n; ++i) {", // 3 (header)
        "        body();",            // 4
        "    }",                      // 5
        "    teardown();",            // 6
        "}",                          // 7
    };
    std::vector<bool> inLoop = loopBodyLines(lines);
    EXPECT_FALSE(inLoop[1]); // setup
    EXPECT_TRUE(inLoop[3]);  // body
    EXPECT_FALSE(inLoop[5]); // teardown
}

// ----------------------------------------------------- API misuse

TEST(RawNew, NewExpressionFires)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "int *p = new int[8];\n"),
                        "raw-new"),
              1);
}

TEST(RawNew, DeletedFunctionIsFine)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "Foo(const Foo &) = delete;\n"),
                        "raw-new"),
              0);
}

TEST(RawNew, DeleteExpressionFires)
{
    EXPECT_EQ(
        countRule(runOn("src/graph/g.cc", "delete ptr;\n"), "raw-new"),
        1);
}

TEST(RawNew, MakeUniqueIsFine)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "auto p = std::make_unique<int>(1);\n"),
                        "raw-new"),
              0);
}

TEST(CheckSideEffect, IncrementInConditionFires)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "GRAL_DCHECK(consume(it++));\n"),
                        "check-side-effect"),
              1);
}

TEST(CheckSideEffect, AssignmentInConditionFires)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "GRAL_CHECK(x = next());\n"),
                        "check-side-effect"),
              1);
}

TEST(CheckSideEffect, ComparisonsAreFine)
{
    std::vector<Finding> findings =
        runOn("src/graph/g.cc",
              "GRAL_CHECK(a == b);\nGRAL_CHECK(a <= b);\n"
              "GRAL_CHECK(a != b);\nGRAL_CHECK(a >= b);\n");
    EXPECT_EQ(countRule(findings, "check-side-effect"), 0);
}

TEST(CheckSideEffect, LambdaCaptureIsFine)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "GRAL_CHECK(std::all_of(v.begin(), "
                              "v.end(), [=](int x) { return x > k; "
                              "}));\n"),
                        "check-side-effect"),
              0);
}

TEST(CheckSideEffect, MultiLineConditionFires)
{
    EXPECT_EQ(countRule(runOn("src/graph/g.cc",
                              "GRAL_CHECK(\n    total += step(),\n"
                              "    total > 0);\n"),
                        "check-side-effect"),
              1);
}

// ------------------------------------------------------ catalogue

TEST(Catalogue, SortedAndCoversEveryEmittedRule)
{
    const std::vector<RuleInfo> &rules = ruleCatalogue();
    EXPECT_TRUE(std::is_sorted(
        rules.begin(), rules.end(),
        [](const RuleInfo &a, const RuleInfo &b) {
            return a.id < b.id;
        }));
    std::vector<std::string_view> ids;
    for (const RuleInfo &r : rules)
        ids.push_back(r.id);
    for (std::string_view want :
         {"layering", "include-cycle", "raw-assert", "vertex-id-type",
          "include-guard", "std-endl", "raw-cerr", "hot-path-metrics",
          "hot-path-span", "hot-path-alloc", "check-side-effect",
          "raw-new"})
        EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end())
            << want;
}

TEST(Catalogue, ExpectedGuardMatchesLintConvention)
{
    EXPECT_EQ(expectedGuard("src/graph/csr.h"), "GRAL_GRAPH_CSR_H");
    EXPECT_EQ(expectedGuard("src/obs/json.h"), "GRAL_OBS_JSON_H");
    EXPECT_EQ(expectedGuard("tools/analyzer/lexer.h"),
              "GRAL_TOOLS_ANALYZER_LEXER_H");
}

} // namespace
} // namespace gral::analyzer
