// Concurrency rule-pack tests: GRAL_GUARDED_BY enforcement,
// GRAL_REQUIRES contracts, the seq_cst atomics audit, and the --fix
// round-trip (apply fixits, re-analyze, expect clean).

#include <gtest/gtest.h>

#include <algorithm>

#include "analyzer/analyzer.h"
#include "analyzer/lexer.h"
#include "analyzer/rules.h"

namespace gral::analyzer
{
namespace
{

std::vector<Finding>
runOn(const std::string &path, const std::string &text)
{
    std::vector<Finding> findings;
    runFileRules(path, lexCpp(text), findings);
    return findings;
}

std::vector<Finding>
ruleOnly(const std::vector<Finding> &findings, std::string_view rule)
{
    std::vector<Finding> matched;
    for (const Finding &finding : findings)
        if (finding.rule == rule)
            matched.push_back(finding);
    return matched;
}

// ------------------------------------------------------ guarded-by

const char *const kGuardedClass = R"(
class Series
{
  public:
    void offer(double v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples_.push_back(v);
    }
    void clearUnsafe() { samples_.clear(); }
    std::size_t
    sizeLocked() GRAL_REQUIRES(mutex_)
    {
        return samples_.size();
    }

  private:
    std::mutex mutex_;
    std::vector<double> samples_ GRAL_GUARDED_BY(mutex_);
};
)";

TEST(ConcurrencyTest, UnguardedAccessIsFlagged)
{
    std::vector<Finding> findings = ruleOnly(
        runOn("src/obs/series.h", kGuardedClass), "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    // Only clearUnsafe touches samples_ without mutex_ held.
    EXPECT_EQ(findings[0].line, 10);
    EXPECT_NE(findings[0].message.find("samples_"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("mutex_"), std::string::npos);
}

TEST(ConcurrencyTest, RequiresContractSatisfiesGuard)
{
    // sizeLocked() carries GRAL_REQUIRES(mutex_), so its samples_
    // access is clean — asserted by the single finding above.
    std::vector<Finding> findings = ruleOnly(
        runOn("src/obs/series.h", kGuardedClass), "guarded-by");
    for (const Finding &finding : findings)
        EXPECT_NE(finding.line, 14);
}

TEST(ConcurrencyTest, ManualLockUnlockTracksHeldSet)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    void f()
    {
        mutex_.lock();
        samples_ = 1;
        mutex_.unlock();
        samples_ = 2;
    }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 9); // only the post-unlock write
}

TEST(ConcurrencyTest, ScopedLockReleasesAtBraceExit)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    void f()
    {
        {
            std::scoped_lock lock(mutex_);
            samples_ = 1;
        }
        samples_ = 2;
    }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 10);
}

TEST(ConcurrencyTest, DeferLockDoesNotCount)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    void f()
    {
        std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
        samples_ = 1;
    }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
}

TEST(ConcurrencyTest, ConstructorsAreExempt)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    Series() { samples_ = 0; }
    ~Series() { samples_ = 0; }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    EXPECT_TRUE(findings.empty());
}

TEST(ConcurrencyTest, WrongMutexDoesNotSatisfyGuard)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    void f()
    {
        std::lock_guard<std::mutex> lock(other_);
        samples_ = 1;
    }
    std::mutex mutex_;
    std::mutex other_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    ASSERT_EQ(findings.size(), 1u);
}

TEST(ConcurrencyTest, GuardedByOnlyAppliesUnderSrc)
{
    std::string text = R"(
class Series
{
    void f() { samples_ = 1; }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)";
    EXPECT_EQ(
        ruleOnly(runOn("src/obs/series.h", text), "guarded-by")
            .size(),
        1u);
    EXPECT_TRUE(
        ruleOnly(runOn("tools/analyzer/series.h", text), "guarded-by")
            .empty());
}

TEST(ConcurrencyTest, SuppressionSilencesGuardedBy)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/obs/series.h", R"(
class Series
{
    void f()
    {
        // gral-analyzer: off-next-line(guarded-by)
        samples_ = 1;
    }
    std::mutex mutex_;
    int samples_ GRAL_GUARDED_BY(mutex_);
};
)"),
                 "guarded-by");
    EXPECT_TRUE(findings.empty());
}

// -------------------------------------------------- atomic-seq-cst

TEST(ConcurrencyTest, DefaultedSeqCstLoadStoreFlagged)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/spmv/pool.cc", R"(
class Pool
{
    void f()
    {
        counter_.store(1);
        auto v = counter_.load();
        counter_.fetch_add(2, std::memory_order_relaxed);
    }
    std::atomic<int> counter_;
};
)"),
                 "atomic-seq-cst");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].line, 6);
    EXPECT_EQ(findings[1].line, 7);
    // Both carry auto-fixes inserting an explicit memory order.
    for (const Finding &finding : findings) {
        ASSERT_EQ(finding.fixits.size(), 1u);
        EXPECT_NE(finding.fixits[0].replacement.find("memory_order"),
                  std::string::npos);
    }
}

TEST(ConcurrencyTest, OperatorRmwOnAtomicFlagged)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/cachesim/sim.cc", R"(
class Sim
{
    void f() { ++hits_; misses_ += 2; }
    std::atomic<std::uint64_t> hits_;
    std::atomic<std::uint64_t> misses_;
};
)"),
                 "atomic-seq-cst");
    ASSERT_EQ(findings.size(), 2u);
    // Operator forms have no single-token fix; no fixits attached.
    for (const Finding &finding : findings)
        EXPECT_TRUE(finding.fixits.empty());
}

TEST(ConcurrencyTest, AtomicAuditOnlyInHotModules)
{
    std::string text = R"(
class C
{
    void f() { counter_.store(1); }
    std::atomic<int> counter_;
};
)";
    EXPECT_EQ(ruleOnly(runOn("src/obs/metrics.cc", text),
                       "atomic-seq-cst")
                  .size(),
              1u);
    // src/graph is not a hot module: defaulted seq_cst accepted.
    EXPECT_TRUE(
        ruleOnly(runOn("src/graph/csr.cc", text), "atomic-seq-cst")
            .empty());
}

TEST(ConcurrencyTest, LocalAtomicVariablesAudited)
{
    std::vector<Finding> findings =
        ruleOnly(runOn("src/spmv/pool.cc", R"(
void
f()
{
    std::atomic<int> next{0};
    next.store(5);
}
)"),
                 "atomic-seq-cst");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 6);
}

// --------------------------------- cross-file TU view + fix cycle

TEST(ConcurrencyTest, HeaderAnnotationCheckedInSourceFile)
{
    SourceTree tree = {
        {"src/obs/reg.h", R"(#ifndef GRAL_OBS_REG_H
#define GRAL_OBS_REG_H
class Registry
{
    void bump();
    std::mutex mutex_;
    int count_ GRAL_GUARDED_BY(mutex_);
};
#endif // GRAL_OBS_REG_H
)"},
        {"src/obs/reg.cc", R"(#include "obs/reg.h"
void
Registry::bump()
{
    count_ += 1;
}
)"},
    };
    AnalysisResult analysis = analyzeTree(tree, Baseline());
    bool found = false;
    for (const SarifResult &result : analysis.results)
        if (result.finding.rule == "guarded-by" &&
            result.finding.path == "src/obs/reg.cc" &&
            result.finding.line == 5)
            found = true;
    EXPECT_TRUE(found);
}

TEST(ConcurrencyTest, FixRoundTripLeavesZeroAtomicFindings)
{
    SourceTree tree = {{"src/spmv/pool.cc", R"(
class Pool
{
    void f()
    {
        counter_.store(1);
        auto v = counter_.load();
        counter_.exchange(3);
    }
    std::atomic<int> counter_;
};
)"}};
    AnalysisResult first = analyzeTree(tree, Baseline());
    std::size_t atomics = 0;
    for (const SarifResult &result : first.results)
        atomics += result.finding.rule == "atomic-seq-cst";
    ASSERT_EQ(atomics, 3u);

    std::vector<std::string> changed = applyFixes(tree, first);
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], "src/spmv/pool.cc");
    // The edit inserted explicit memory orders.
    EXPECT_NE(tree[0].content.find("counter_.store(1, "
                                   "std::memory_order_relaxed)"),
              std::string::npos);

    AnalysisResult second = analyzeTree(tree, Baseline());
    for (const SarifResult &result : second.results)
        EXPECT_NE(result.finding.rule, "atomic-seq-cst")
            << result.finding.line << ": " << result.finding.message;
}

} // namespace
} // namespace gral::analyzer
