/**
 * @file
 * SARIF 2.1.0 export: the golden document must be valid JSON (checked
 * with the repo's own gral::jsonValidate) and carry the structural
 * elements CI viewers rely on — schema URL, rule catalogue, result
 * locations, fingerprints, and baselineState.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyzer/rules.h"
#include "analyzer/sarif.h"
#include "obs/json.h"

namespace gral::analyzer
{
namespace
{

std::vector<SarifResult>
sampleResults()
{
    SarifResult fresh;
    fresh.finding = {"src/graph/evil.h", 2, 1, "layering",
                     "src/graph may not include analysis"};
    fresh.baselined = false;
    fresh.fingerprint =
        "src/graph/evil.h|layering|#include \"analysis/report.h\"";

    SarifResult known;
    known.finding = {"src/spmv/s.cc", 10, 5, "hot-path-alloc",
                     "allocation inside a simulator/SpMV loop"};
    known.baselined = true;
    known.fingerprint = "src/spmv/s.cc|hot-path-alloc|x";
    return {fresh, known};
}

TEST(Sarif, DocumentIsValidJson)
{
    std::string doc = writeSarif(sampleResults());
    std::string error;
    EXPECT_TRUE(gral::jsonValidate(doc, &error)) << error;
}

TEST(Sarif, EmptyRunIsValidJson)
{
    std::string doc = writeSarif({});
    std::string error;
    EXPECT_TRUE(gral::jsonValidate(doc, &error)) << error;
    EXPECT_NE(doc.find("\"results\""), std::string::npos);
}

TEST(Sarif, CarriesSchemaAndVersion)
{
    std::string doc = writeSarif(sampleResults());
    EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(doc.find("\"version\":\"2.1.0\""), std::string::npos)
        << doc.substr(0, 200);
}

TEST(Sarif, DriverListsTheFullRuleCatalogue)
{
    std::string doc = writeSarif(sampleResults());
    EXPECT_NE(doc.find("\"driver\""), std::string::npos);
    for (const RuleInfo &rule : ruleCatalogue())
        EXPECT_NE(doc.find("\"" + std::string(rule.id) + "\""),
                  std::string::npos)
            << rule.id;
}

TEST(Sarif, ResultCarriesLocationAndRule)
{
    std::string doc = writeSarif(sampleResults());
    EXPECT_NE(doc.find("\"ruleId\":\"layering\""),
              std::string::npos);
    EXPECT_NE(doc.find("src/graph/evil.h"), std::string::npos);
    EXPECT_NE(doc.find("\"startLine\":2"), std::string::npos);
    EXPECT_NE(doc.find("\"startColumn\":1"), std::string::npos);
}

TEST(Sarif, BaselineStateDistinguishesNewFromKnown)
{
    std::string doc = writeSarif(sampleResults());
    EXPECT_NE(doc.find("\"baselineState\":\"new\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"baselineState\":\"unchanged\""),
              std::string::npos);
}

TEST(Sarif, FingerprintIsStableAcrossLineMoves)
{
    std::vector<SarifResult> a = sampleResults();
    std::vector<SarifResult> b = sampleResults();
    b[0].finding.line = 99; // same content, different line
    std::string docA = writeSarif(a);
    std::string docB = writeSarif(b);

    auto fingerprintOf = [](const std::string &doc) {
        std::size_t key = doc.find("gralFindingKey/v1");
        EXPECT_NE(key, std::string::npos);
        std::size_t colon = doc.find(':', key);
        std::size_t open = doc.find('"', colon);
        std::size_t close = doc.find('"', open + 1);
        return doc.substr(open + 1, close - open - 1);
    };
    EXPECT_EQ(fingerprintOf(docA), fingerprintOf(docB));
}

TEST(Sarif, EscapesPathologicalMessageText)
{
    SarifResult nasty;
    nasty.finding = {"src/graph/g.cc", 1, 1, "raw-cerr",
                     "quote \" backslash \\ newline \n tab \t"};
    nasty.fingerprint = "k";
    std::string doc = writeSarif({nasty});
    std::string error;
    EXPECT_TRUE(gral::jsonValidate(doc, &error)) << error;
}

} // namespace
} // namespace gral::analyzer
