// Symbol-table tests: classes, fields, annotations, functions,
// loop-body ranges, call sites, and the merged TU view.

#include "analyzer/symbols.h"

#include <gtest/gtest.h>

#include "analyzer/lexer.h"

namespace gral::analyzer
{
namespace
{

FileSymbols
symbolsOf(const std::string &text, TokenStream *out = nullptr)
{
    TokenStream ts = tokenize(lexCpp(text));
    FileSymbols symbols = buildSymbols(ts);
    if (out != nullptr)
        *out = std::move(ts);
    return symbols;
}

const ClassSymbol *
classNamed(const FileSymbols &symbols, const std::string &name)
{
    for (const ClassSymbol &c : symbols.classes)
        if (c.name == name)
            return &c;
    return nullptr;
}

const FunctionSymbol *
functionNamed(const FileSymbols &symbols, const std::string &name)
{
    for (const FunctionSymbol &f : symbols.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

TEST(SymbolsTest, ClassFieldsWithTypesAndAnnotations)
{
    FileSymbols symbols = symbolsOf(R"(
class Series
{
  public:
    void offer(double value);

  private:
    std::mutex mutex_;
    std::vector<double> samples_ GRAL_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> dropped_{0};
    int plain_ = 0;
};
)");
    const ClassSymbol *series = classNamed(symbols, "Series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->fields.size(), 4u);

    EXPECT_EQ(series->fields[0].name, "mutex_");
    EXPECT_TRUE(series->fields[0].isMutex);
    EXPECT_FALSE(series->fields[0].isAtomic);

    EXPECT_EQ(series->fields[1].name, "samples_");
    EXPECT_EQ(series->fields[1].guardedBy, "mutex_");
    EXPECT_EQ(series->fields[1].line, 9);

    EXPECT_EQ(series->fields[2].name, "dropped_");
    EXPECT_TRUE(series->fields[2].isAtomic);

    EXPECT_EQ(series->fields[3].name, "plain_");
    EXPECT_TRUE(series->fields[3].guardedBy.empty());
}

TEST(SymbolsTest, InClassAndOutOfLineFunctions)
{
    FileSymbols symbols = symbolsOf(R"(
class Pool
{
  public:
    Pool();
    virtual ~Pool();
    virtual void run() = 0;
    std::size_t size() const { return n_; }
    void drain() GRAL_REQUIRES(mutex_);

  private:
    std::size_t n_ = 0;
    std::mutex mutex_;
};

void
Pool::drain()
{
    n_ = 0;
}
)");
    const FunctionSymbol *run = functionNamed(symbols, "run");
    ASSERT_NE(run, nullptr);
    EXPECT_TRUE(run->isVirtual);
    EXPECT_FALSE(run->hasBody);
    EXPECT_EQ(run->className, "Pool");

    const FunctionSymbol *size = functionNamed(symbols, "size");
    ASSERT_NE(size, nullptr);
    EXPECT_TRUE(size->hasBody);

    const FunctionSymbol *ctor = functionNamed(symbols, "Pool");
    ASSERT_NE(ctor, nullptr);
    EXPECT_TRUE(ctor->isCtorOrDtor);
    const FunctionSymbol *dtor = functionNamed(symbols, "~Pool");
    ASSERT_NE(dtor, nullptr);
    EXPECT_TRUE(dtor->isCtorOrDtor);
    EXPECT_TRUE(dtor->isVirtual);

    // Two 'drain' symbols: the header declaration carrying the
    // GRAL_REQUIRES contract and the out-of-line definition.
    int declarations = 0, definitions = 0;
    for (const FunctionSymbol &f : symbols.functions) {
        if (f.name != "drain")
            continue;
        EXPECT_EQ(f.className, "Pool");
        if (f.hasBody)
            ++definitions;
        else {
            ++declarations;
            ASSERT_EQ(f.requiresLocks.size(), 1u);
            EXPECT_EQ(f.requiresLocks[0], "mutex_");
        }
    }
    EXPECT_EQ(declarations, 1);
    EXPECT_EQ(definitions, 1);
}

TEST(SymbolsTest, NamespacesAndTemplatesAreTransparent)
{
    FileSymbols symbols = symbolsOf(R"(
namespace gral::obs
{
template <typename T>
class Shard
{
    T value_ GRAL_GUARDED_BY(lock_);
    std::mutex lock_;
};
template <typename T>
T
clamp(T v)
{
    return v;
}
} // namespace gral::obs
)");
    const ClassSymbol *shard = classNamed(symbols, "Shard");
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->fields[0].guardedBy, "lock_");
    const FunctionSymbol *clamp = functionNamed(symbols, "clamp");
    ASSERT_NE(clamp, nullptr);
    EXPECT_TRUE(clamp->hasBody);
}

TEST(SymbolsTest, LoopBodiesIncludeBraceless)
{
    TokenStream ts;
    symbolsOf(R"(
void f()
{
    for (int i = 0; i < n; ++i) {
        g(i);
        while (busy())
            spin();
    }
    do { h(); } while (more());
}
)",
              &ts);
    std::vector<LoopRange> loops =
        loopBodies(ts, 0, ts.tokens.size());
    ASSERT_EQ(loops.size(), 3u);
    // Every loop body is a non-empty, in-range token span.
    for (const LoopRange &loop : loops) {
        EXPECT_LT(loop.begin, loop.end);
        EXPECT_LE(loop.end, ts.tokens.size());
    }
    // The while body (brace-less) covers exactly `spin ( )`.
    bool sawSpin = false;
    for (const LoopRange &loop : loops) {
        for (std::size_t i = loop.begin; i < loop.end; ++i)
            if (ts.isIdent(i, "spin"))
                sawSpin = true;
    }
    EXPECT_TRUE(sawSpin);
}

TEST(SymbolsTest, CallSitesDistinguishMemberCalls)
{
    TokenStream ts;
    symbolsOf("void f() { g(); obj.h(); ptr->k(); if (x) {} }\n",
              &ts);
    std::vector<CallSite> calls = callSites(ts, 0, ts.tokens.size());
    std::map<std::string, bool> byName;
    for (const CallSite &call : calls)
        byName[call.name] = call.isMemberCall;
    ASSERT_EQ(byName.size(), 4u); // f's declarator also matches
    EXPECT_FALSE(byName.at("g"));
    EXPECT_TRUE(byName.at("h"));
    EXPECT_TRUE(byName.at("k"));
    EXPECT_EQ(byName.count("if"), 0u); // keywords excluded
}

TEST(SymbolsTest, NormalizeGuardExpr)
{
    EXPECT_EQ(normalizeGuardExpr("this->mutex_"), "mutex_");
    EXPECT_EQ(normalizeGuardExpr(" & mutex_ "), "mutex_");
    EXPECT_EQ(normalizeGuardExpr("queue.lock"), "queue.lock");
}

TEST(SymbolsTest, PreprocessorDirectivesDoNotBleedIntoTypes)
{
    // A directive has no ';', so without an explicit boundary its
    // tokens glue onto the return type of whatever follows —
    // `#include <memory>` turned `Graph` into `#include<memory>Graph`
    // and broke the lifetime pack's owner-by-value lookup.
    FileSymbols symbols = symbolsOf(
        "#include <memory>\n"
        "#include \"graph/view.h\"\n"
        "#define GRAL_WIDE(x) \\\n"
        "    (x)\n"
        "Graph makeGraph();\n"
        "void use() {}\n");
    const FunctionSymbol *make = functionNamed(symbols, "makeGraph");
    ASSERT_NE(make, nullptr);
    EXPECT_EQ(make->returnType, "Graph");
    const FunctionSymbol *use = functionNamed(symbols, "use");
    ASSERT_NE(use, nullptr);
    EXPECT_EQ(use->returnType, "void");
}

TEST(SymbolsTest, TuViewMergesHeaderFields)
{
    // Header: class with annotated field. Source: out-of-line body.
    FileSymbols header = symbolsOf(R"(
class Registry
{
    std::mutex mutex_;
    int count_ GRAL_GUARDED_BY(mutex_);
    void bump() GRAL_REQUIRES(mutex_);
    virtual void flush();
};
)");
    FileSymbols source = symbolsOf(R"(
void
Registry::bump()
{
    ++count_;
}
)");
    TuView tu = buildTuView(source, {&header});
    const std::vector<const FieldSymbol *> &fields =
        tu.fieldsOf("Registry");
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[1]->guardedBy, "mutex_");
    std::vector<std::string> requires_ =
        tu.requiresOf("Registry", "bump");
    ASSERT_EQ(requires_.size(), 1u);
    EXPECT_EQ(requires_[0], "mutex_");
    EXPECT_EQ(tu.virtualFunctions.count("flush"), 1u);
    EXPECT_TRUE(tu.fieldsOf("Unknown").empty());
}

} // namespace
} // namespace gral::analyzer
