// Incremental cache tests: the text format round-trip, hash-based
// invalidation, include-graph expansion, and --files selection.

#include "analyzer/cache.h"

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "analyzer/version.h"

namespace gral::analyzer
{
namespace
{

SourceTree
smallTree()
{
    return {
        {"src/obs/val.h", R"(#ifndef GRAL_OBS_VAL_H
#define GRAL_OBS_VAL_H
class Val
{
    void bump();
    std::mutex mutex_;
    int count_ GRAL_GUARDED_BY(mutex_);
};
#endif // GRAL_OBS_VAL_H
)"},
        {"src/obs/val.cc", R"(#include "obs/val.h"
void
Val::bump()
{
    count_ += 1;
}
)"},
        {"src/graph/other.cc", R"(int other() { return 1; }
)"},
    };
}

std::size_t
countRule(const AnalysisResult &analysis, std::string_view rule)
{
    std::size_t n = 0;
    for (const SarifResult &result : analysis.results)
        n += result.finding.rule == rule;
    return n;
}

TEST(CacheTest, ContentHashIsStableAndSensitive)
{
    EXPECT_EQ(contentHash("abc"), contentHash("abc"));
    EXPECT_NE(contentHash("abc"), contentHash("abd"));
    EXPECT_NE(contentHash(""), contentHash("\n"));
}

TEST(CacheTest, RenderParseRoundTrip)
{
    Cache cache;
    CacheEntry &entry = cache.entries["src/a b.cc"];
    entry.hash = 0xdeadbeef12345678ull;
    entry.includes.push_back({"obs/val.h", 3});
    entry.includeLines.push_back("#include \"obs/val.h\"");
    entry.suppressions[7] = {"guarded-by", "std-endl"};
    entry.suppressions[9] = {"*"};
    CachedFinding cached;
    cached.finding = {"src/a b.cc", 12, 5, "std-endl",
                      "message with\ttab and\nnewline"};
    cached.finding.fixits.push_back({42, 3, "'\\n'"});
    cached.strippedLine = "    std::cout << std::endl;";
    entry.findings.push_back(cached);

    Cache parsed = Cache::parse(cache.render());
    ASSERT_EQ(parsed.entries.size(), 1u);
    const CacheEntry &back = parsed.entries.at("src/a b.cc");
    EXPECT_EQ(back.hash, entry.hash);
    ASSERT_EQ(back.includes.size(), 1u);
    EXPECT_EQ(back.includes[0].target, "obs/val.h");
    EXPECT_EQ(back.includes[0].line, 3);
    EXPECT_EQ(back.includeLineAt(3), "#include \"obs/val.h\"");
    EXPECT_TRUE(back.isSuppressed(7, "guarded-by"));
    EXPECT_FALSE(back.isSuppressed(7, "raw-new"));
    EXPECT_TRUE(back.isSuppressed(9, "anything"));
    ASSERT_EQ(back.findings.size(), 1u);
    EXPECT_EQ(back.findings[0].finding.message,
              "message with\ttab and\nnewline");
    EXPECT_EQ(back.findings[0].finding.path, "src/a b.cc");
    ASSERT_EQ(back.findings[0].finding.fixits.size(), 1u);
    EXPECT_EQ(back.findings[0].finding.fixits[0].offset, 42u);
    EXPECT_EQ(back.findings[0].strippedLine,
              "    std::cout << std::endl;");
}

TEST(CacheTest, VersionMismatchParsesEmpty)
{
    EXPECT_TRUE(Cache::parse("gral-analyzer-cache v1\n")
                    .entries.empty());
    EXPECT_TRUE(Cache::parse("garbage").entries.empty());
    EXPECT_TRUE(Cache::parse("").entries.empty());
}

TEST(CacheTest, SignatureChangeBustsTheCache)
{
    // The header carries analyzerSignature() — kAnalyzerVersion plus
    // a hash of the rule-id list — so a cache written before a rule
    // was added (or the analyzer was bumped) reads as empty and the
    // next run is cold. Regression test for stale-cache findings.
    Cache cache;
    CacheEntry entry;
    entry.hash = 42;
    cache.entries["src/graph/g.cc"] = entry;
    std::string rendered = cache.render();
    ASSERT_EQ(rendered.rfind("gral-analyzer-cache " +
                                 analyzerSignature() + "\n",
                             0),
              0u)
        << rendered;
    EXPECT_EQ(Cache::parse(rendered).entries.size(), 1u);

    // Same payload under any other signature: cold.
    std::string stale = rendered;
    std::size_t eol = stale.find('\n');
    stale.replace(0, eol, "gral-analyzer-cache v2/0123abcd");
    EXPECT_TRUE(Cache::parse(stale).entries.empty());
}

TEST(CacheTest, WarmRunAnalyzesNothingAndKeepsFindings)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;

    AnalysisResult cold = analyzeTree(tree, Baseline(), options);
    EXPECT_EQ(cold.filesAnalyzed, 3u);
    std::size_t coldGuarded = countRule(cold, "guarded-by");
    EXPECT_EQ(coldGuarded, 1u); // val.cc bumps count_ unlocked

    AnalysisResult warm = analyzeTree(tree, Baseline(), options);
    EXPECT_EQ(warm.filesAnalyzed, 0u);
    EXPECT_EQ(warm.results.size(), cold.results.size());
    EXPECT_EQ(countRule(warm, "guarded-by"), coldGuarded);
}

TEST(CacheTest, CacheSurvivesSerialization)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;
    analyzeTree(tree, Baseline(), options);

    Cache reloaded = Cache::parse(cache.render());
    AnalyzeOptions warmOptions;
    warmOptions.cache = &reloaded;
    AnalysisResult warm = analyzeTree(tree, Baseline(), warmOptions);
    EXPECT_EQ(warm.filesAnalyzed, 0u);
    EXPECT_EQ(countRule(warm, "guarded-by"), 1u);
}

TEST(CacheTest, HeaderEditInvalidatesIncludingSource)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;
    analyzeTree(tree, Baseline(), options);

    // Touch the header only (comment keeps semantics identical).
    tree[0].content += "// touched\n";
    AnalysisResult incremental =
        analyzeTree(tree, Baseline(), options);
    // Header + its includer re-analyze; other.cc stays cached.
    EXPECT_EQ(incremental.filesAnalyzed, 2u);
    EXPECT_EQ(countRule(incremental, "guarded-by"), 1u);
}

TEST(CacheTest, SourceEditDoesNotInvalidateSiblings)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;
    analyzeTree(tree, Baseline(), options);

    tree[2].content = "int other() { return 2; }\n";
    AnalysisResult incremental =
        analyzeTree(tree, Baseline(), options);
    EXPECT_EQ(incremental.filesAnalyzed, 1u);
}

TEST(CacheTest, SelectionRestrictsAnalysisButKeepsCached)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;
    analyzeTree(tree, Baseline(), options);

    // Edit both leaf sources, but select only other.cc.
    tree[1].content += "// touched\n";
    tree[2].content += "// touched\n";
    AnalyzeOptions selected;
    selected.cache = &cache;
    selected.selectFiles = {"src/graph/other.cc"};
    AnalysisResult partial =
        analyzeTree(tree, Baseline(), selected);
    EXPECT_EQ(partial.filesAnalyzed, 1u);
    // val.cc was dirty but unselected: its stale findings are not
    // reported and its cache entry is dropped...
    EXPECT_EQ(countRule(partial, "guarded-by"), 0u);
    EXPECT_EQ(cache.entries.count("src/obs/val.cc"), 0u);

    // ...so the next unrestricted run re-analyzes it.
    AnalyzeOptions unrestricted;
    unrestricted.cache = &cache;
    AnalysisResult full =
        analyzeTree(tree, Baseline(), unrestricted);
    EXPECT_EQ(full.filesAnalyzed, 1u);
    EXPECT_EQ(countRule(full, "guarded-by"), 1u);
}

TEST(CacheTest, SelectionExpandsToDependents)
{
    SourceTree tree = smallTree();
    Cache cache;
    AnalyzeOptions options;
    options.cache = &cache;
    analyzeTree(tree, Baseline(), options);

    // Select the edited header: its includer re-analyzes too.
    tree[0].content += "// touched\n";
    AnalyzeOptions selected;
    selected.cache = &cache;
    selected.selectFiles = {"src/obs/val.h"};
    AnalysisResult partial =
        analyzeTree(tree, Baseline(), selected);
    EXPECT_EQ(partial.filesAnalyzed, 2u);
    EXPECT_EQ(countRule(partial, "guarded-by"), 1u);
}

} // namespace
} // namespace gral::analyzer
