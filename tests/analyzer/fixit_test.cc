// FixIt engine tests: ordering, overlap rejection, bounds checks.

#include "analyzer/fixit.h"

#include <gtest/gtest.h>

namespace gral::analyzer
{
namespace
{

TEST(FixItTest, AppliesSingleReplacement)
{
    EXPECT_EQ(applyFixIts("abc def", {{4, 3, "xyz"}}), "abc xyz");
}

TEST(FixItTest, AppliesInsertionsAndDeletions)
{
    // Insertion (length 0) and deletion (empty replacement).
    EXPECT_EQ(applyFixIts("ab", {{1, 0, "-"}}), "a-b");
    EXPECT_EQ(applyFixIts("abc", {{1, 1, ""}}), "ac");
}

TEST(FixItTest, AppliesMultipleEditsRegardlessOfOrder)
{
    // Offsets shift as edits apply; the engine works back-to-front
    // so callers can pass edits in any order.
    std::string out = applyFixIts(
        "one two three", {{8, 5, "3"}, {0, 3, "1"}, {4, 3, "2"}});
    EXPECT_EQ(out, "1 2 3");
}

TEST(FixItTest, DropsOverlappingEdits)
{
    // Two edits on the same bytes: first (lowest offset) wins.
    EXPECT_EQ(applyFixIts("abcdef", {{1, 3, "X"}, {2, 2, "Y"}}),
              "aXef");
    // Same offset twice: one survives.
    EXPECT_EQ(applyFixIts("abc", {{1, 1, "X"}, {1, 1, "Y"}}), "aXc");
}

TEST(FixItTest, DropsOutOfBoundsEdits)
{
    EXPECT_EQ(applyFixIts("abc", {{2, 5, "X"}}), "abc");
    EXPECT_EQ(applyFixIts("abc", {{9, 0, "X"}}), "abc");
}

TEST(FixItTest, AdjacentEditsBothApply)
{
    EXPECT_EQ(applyFixIts("abcd", {{0, 2, "X"}, {2, 2, "Y"}}), "XY");
}

} // namespace
} // namespace gral::analyzer
