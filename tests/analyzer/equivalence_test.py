#!/usr/bin/env python3
"""Equivalence check: gral_analyzer vs the deprecated Python lint.

Runs both linters over the shared fixture tree
(tests/analyzer/fixtures) and asserts they report the *identical* set
of (path, line, rule) findings for the five rules both implement:
raw-assert, vertex-id-type, include-guard, std-endl, raw-cerr.
Analyzer-only rules (layering, include-cycle, hot-path-*, raw-new,
check-side-effect) are filtered out before comparing.

Usage (wired as the repo_analyze_lint_equivalence ctest):
    equivalence_test.py <gral_analyzer> <gral_lint.py> <fixtures dir>
"""

import re
import subprocess
import sys

SHARED_RULES = {
    "raw-assert",
    "vertex-id-type",
    "include-guard",
    "std-endl",
    "raw-cerr",
}

# gral_analyzer: "path:line:col: [rule] message"
# gral_lint.py:  "path:line: [rule] message"
FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+)(?::(?P<col>\d+))?: "
    r"\[(?P<rule>[\w-]+)\]"
)


def parse_findings(output: str) -> set:
    findings = set()
    for line in output.splitlines():
        match = FINDING_RE.match(line)
        if not match:
            continue
        if match.group("rule") not in SHARED_RULES:
            continue
        findings.add(
            (match.group("path"), int(match.group("line")),
             match.group("rule")))
    return findings


def run(cmd) -> str:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # Both linters exit 1 when they find anything; only >1 is a crash.
    if proc.returncode not in (0, 1):
        sys.stderr.write(
            f"command failed ({proc.returncode}): {' '.join(cmd)}\n"
            f"{proc.stdout}{proc.stderr}")
        sys.exit(2)
    return proc.stdout


def main() -> int:
    if len(sys.argv) != 4:
        sys.stderr.write(
            "usage: equivalence_test.py <gral_analyzer> "
            "<gral_lint.py> <fixtures dir>\n")
        return 2
    analyzer, lint_py, fixtures = sys.argv[1:4]

    analyzer_out = run(
        [analyzer, "--root", fixtures, "--no-baseline"])
    lint_out = run(
        [sys.executable, lint_py, "--root", fixtures])

    analyzer_findings = parse_findings(analyzer_out)
    lint_findings = parse_findings(lint_out)

    if not lint_findings:
        sys.stderr.write(
            "suspicious: the Python lint found nothing in the "
            "fixtures — the fixture tree is supposed to contain "
            "violations\n")
        return 1

    if analyzer_findings == lint_findings:
        print(f"equivalence OK: {len(lint_findings)} shared "
              f"finding(s) agree")
        return 0

    for finding in sorted(analyzer_findings - lint_findings):
        sys.stderr.write(f"only gral_analyzer: {finding}\n")
    for finding in sorted(lint_findings - analyzer_findings):
        sys.stderr.write(f"only gral_lint.py: {finding}\n")
    return 1


if __name__ == "__main__":
    sys.exit(main())
