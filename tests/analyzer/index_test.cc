/**
 * @file
 * Cross-TU program index tests: the ISSUE's motivating fixture (a
 * hot src/cachesim loop calling an allocating helper defined in
 * another TU), the index's parse/render round trip, signature-based
 * cache busting, and warm-run entry reuse.
 */

#include <gtest/gtest.h>

#include <string>

#include "analyzer/analyzer.h"
#include "analyzer/index.h"
#include "analyzer/version.h"

namespace gral::analyzer
{
namespace
{

/** Hot loop in cache-simulator code calling a helper whose
 *  allocation lives in a different TU — invisible to any same-TU
 *  fixpoint. */
SourceTree
crossTuTree()
{
    return {
        {"src/cachesim/hot.cc",
         "#include \"cachesim/helper.h\"\n"
         "void simulate()\n"
         "{\n"
         "    for (int i = 0; i < 100; ++i) {\n"
         "        recordAccess();\n"
         "    }\n"
         "}\n"},
        {"src/cachesim/helper.h",
         "#ifndef GRAL_CACHESIM_HELPER_H\n"
         "#define GRAL_CACHESIM_HELPER_H\n"
         "void recordAccess();\n"
         "#endif // GRAL_CACHESIM_HELPER_H\n"},
        {"src/obs/helper.cc",
         "#include <memory>\n"
         "void recordAccess()\n"
         "{\n"
         "    auto entry = std::make_unique<int>(3);\n"
         "    (void)entry;\n"
         "}\n"},
    };
}

TEST(Index, HotLoopCallingAllocatingHelperInAnotherTu)
{
    AnalysisResult result =
        analyzeTree(crossTuTree(), Baseline{}, 1);
    ASSERT_EQ(result.newFindings().size(), 1u);
    const Finding &finding = *result.newFindings()[0];
    EXPECT_EQ(finding.rule, "hot-path-alloc");
    EXPECT_EQ(finding.path, "src/cachesim/hot.cc");
    EXPECT_EQ(finding.line, 5);
    EXPECT_NE(finding.message.find("call to 'recordAccess()'"),
              std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("another TU"), std::string::npos)
        << finding.message;
    EXPECT_NE(finding.message.find("src/obs/helper.cc"),
              std::string::npos)
        << finding.message;
}

TEST(Index, CallSiteSuppressionSilencesCrossTuFinding)
{
    SourceTree tree = crossTuTree();
    tree[0].content =
        "#include \"cachesim/helper.h\"\n"
        "void simulate()\n"
        "{\n"
        "    for (int i = 0; i < 100; ++i) {\n"
        "        // gral-analyzer: off-next-line(hot-path-alloc)\n"
        "        recordAccess();\n"
        "    }\n"
        "}\n";
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(result.newFindings().empty());
}

TEST(Index, WitnessSuppressionNeverEntersTheIndex)
{
    SourceTree tree = crossTuTree();
    tree[2].content =
        "#include <memory>\n"
        "void recordAccess()\n"
        "{\n"
        "    // gral-analyzer: off-next-line(hot-path-alloc)\n"
        "    auto entry = std::make_unique<int>(3);\n"
        "    (void)entry;\n"
        "}\n";
    AnalysisResult result = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(result.newFindings().empty());
}

TEST(Index, RenderParseRoundTrip)
{
    ProgramIndex index;
    AnalyzeOptions options;
    options.jobs = 1;
    options.index = &index;
    analyzeTree(crossTuTree(), Baseline{}, options);
    ASSERT_EQ(index.entries.size(), 3u);

    std::string rendered = index.render();
    ProgramIndex reparsed = ProgramIndex::parse(rendered);
    EXPECT_EQ(reparsed.entries.size(), 3u);
    EXPECT_EQ(reparsed.render(), rendered);
    EXPECT_EQ(
        reparsed.entries.at("src/cachesim/hot.cc").hotCalls.size(),
        1u);
    EXPECT_TRUE(
        reparsed.entries.at("src/obs/helper.cc")
            .defines("recordAccess"));
}

TEST(Index, StaleSignatureParsesEmpty)
{
    // An index written by any other analyzer version (different
    // rule set or bumped kAnalyzerVersion) must read as cold.
    std::string stale = "gral-analyzer-index v0/deadbeef\n"
                        "file\tsrc/a.cc\tabc123\n";
    EXPECT_TRUE(ProgramIndex::parse(stale).entries.empty());
    EXPECT_TRUE(ProgramIndex::parse("").entries.empty());
}

TEST(Index, CurrentSignatureParsesNonEmpty)
{
    std::string fresh = "gral-analyzer-index " +
                        analyzerSignature() +
                        "\nfile\tsrc/a.cc\tabc123\n";
    EXPECT_EQ(ProgramIndex::parse(fresh).entries.size(), 1u);
}

TEST(Index, WarmRunReusesUnchangedEntries)
{
    ProgramIndex index;
    AnalyzeOptions options;
    options.jobs = 1;
    options.index = &index;
    SourceTree tree = crossTuTree();

    AnalysisResult cold = analyzeTree(tree, Baseline{}, options);
    EXPECT_EQ(cold.indexEntriesBuilt, 3u);
    EXPECT_EQ(cold.indexEntriesReused, 0u);

    AnalysisResult warm = analyzeTree(tree, Baseline{}, options);
    EXPECT_EQ(warm.indexEntriesBuilt, 0u);
    EXPECT_EQ(warm.indexEntriesReused, 3u);
    // The cross-TU findings are still recomputed from the index.
    ASSERT_EQ(warm.newFindings().size(), 1u);
    EXPECT_EQ(warm.newFindings()[0]->rule, "hot-path-alloc");

    // Editing the helper rebuilds exactly its entry — and the
    // finding in the *untouched* hot file disappears.
    tree[2].content = "void recordAccess()\n"
                      "{\n"
                      "}\n";
    AnalysisResult edited = analyzeTree(tree, Baseline{}, options);
    EXPECT_EQ(edited.indexEntriesBuilt, 1u);
    EXPECT_EQ(edited.indexEntriesReused, 2u);
    EXPECT_TRUE(edited.newFindings().empty());
}

} // namespace
} // namespace gral::analyzer
