/**
 * @file
 * Lifetime/escape rule pack fixtures (view-from-temporary,
 * view-outlives-storage, return-dangling-view,
 * view-invalidated-by-mutation). The positive fixtures pin the
 * byte-exact line/column every rule anchors at; the suppressed and
 * negative twins pin the pack's false-positive behaviour; the --fix
 * round trip proves the materialize fixit leaves a clean file.
 *
 * Fixture sources live in tests/analyzer/fixtures/lifetime/ (the
 * GRAL_TEST_FIXTURES_DIR compile definition points there) and are
 * analyzed under a src/-style pseudo path, since the lifetime rules
 * only run on production code.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/lexer.h"
#include "analyzer/lifetime.h"
#include "analyzer/rules.h"

namespace gral::analyzer
{
namespace
{

std::string
readFixture(const std::string &name)
{
    std::string path =
        std::string(GRAL_TEST_FIXTURES_DIR) + "/lifetime/" + name;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_FALSE(buffer.str().empty()) << "missing fixture " << path;
    return buffer.str();
}

/** Findings of @p rule for fixture @p name analyzed as src/ code. */
std::vector<Finding>
lifetimeFindings(const std::string &name, const std::string &rule)
{
    std::vector<Finding> findings;
    runFileRules("src/graph/" + name, lexCpp(readFixture(name)),
                 findings);
    std::vector<Finding> matched;
    for (Finding &finding : findings)
        if (finding.rule == rule)
            matched.push_back(std::move(finding));
    return matched;
}

int
countLifetimeRules(const std::vector<Finding> &findings)
{
    int n = 0;
    for (const Finding &finding : findings)
        if (finding.rule == "view-from-temporary" ||
            finding.rule == "view-outlives-storage" ||
            finding.rule == "return-dangling-view" ||
            finding.rule == "view-invalidated-by-mutation")
            ++n;
    return n;
}

// ------------------------------------------------------- positives

TEST(Lifetime, ViewFromTemporaryAnchorsAtTemporary)
{
    std::vector<Finding> found = lifetimeFindings(
        "view_from_temporary.cc", "view-from-temporary");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].line, 16);
    EXPECT_EQ(found[0].column, 26);
    EXPECT_NE(found[0].message.find("'makeGraph(...)'"),
              std::string::npos)
        << found[0].message;
    EXPECT_NE(found[0].message.find("fixable with --fix"),
              std::string::npos)
        << found[0].message;
    EXPECT_FALSE(found[0].fixits.empty());
}

TEST(Lifetime, ViewOutlivesStorageAnchorsAtFirstUse)
{
    std::vector<Finding> found = lifetimeFindings(
        "view_outlives_storage.cc", "view-outlives-storage");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].line, 21);
    EXPECT_EQ(found[0].column, 12);
    EXPECT_NE(found[0].message.find(
                  "'graph' went out of scope on line 20"),
              std::string::npos)
        << found[0].message;
}

TEST(Lifetime, ReturnDanglingViewAnchorsAtReturn)
{
    std::vector<Finding> found = lifetimeFindings(
        "return_dangling_view.cc", "return-dangling-view");
    ASSERT_EQ(found.size(), 2u);
    // Variant 1: view of a local owner.
    EXPECT_EQ(found[0].line, 17);
    EXPECT_EQ(found[0].column, 5);
    EXPECT_NE(found[0].message.find("the local 'graph'"),
              std::string::npos)
        << found[0].message;
    // Variant 2: view of a by-value parameter; the advice names the
    // annotation that makes the contract explicit.
    EXPECT_EQ(found[1].line, 23);
    EXPECT_EQ(found[1].column, 5);
    EXPECT_NE(found[1].message.find("by-value parameter 'graph'"),
              std::string::npos)
        << found[1].message;
    EXPECT_NE(found[1].message.find("GRAL_LIFETIMEBOUND"),
              std::string::npos)
        << found[1].message;
}

TEST(Lifetime, ViewInvalidatedByMutationAnchorsAtFirstUse)
{
    std::vector<Finding> found = lifetimeFindings(
        "view_invalidated_by_mutation.cc",
        "view-invalidated-by-mutation");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].line, 18);
    EXPECT_EQ(found[0].column, 13);
    EXPECT_NE(
        found[0].message.find("'values.push_back()' on line 17"),
        std::string::npos)
        << found[0].message;
}

// ------------------------------------------- suppressed / negative

TEST(Lifetime, SuppressedFixtureStaysQuiet)
{
    std::vector<Finding> findings;
    runFileRules("src/graph/suppressed.cc",
                 lexCpp(readFixture("suppressed.cc")), findings);
    EXPECT_EQ(countLifetimeRules(findings), 0);
}

TEST(Lifetime, NegativeFixtureStaysQuiet)
{
    std::vector<Finding> findings;
    runFileRules("src/graph/negative.cc",
                 lexCpp(readFixture("negative.cc")), findings);
    EXPECT_EQ(countLifetimeRules(findings), 0);
}

TEST(Lifetime, FiresInFilesWithIncludeDirectives)
{
    // Regression: every real src/ file starts with includes, and a
    // directive used to bleed into the next declaration's return
    // type, hiding the owner-by-value producer from the pack.
    std::vector<Finding> findings;
    runFileRules("src/graph/use.cc",
                 lexCpp("#include \"graph/view.h\"\n"
                        "Graph makeGraph();\n"
                        "void bad()\n"
                        "{\n"
                        "    GraphView dangling = "
                        "makeGraph().view();\n"
                        "    (void)dangling;\n"
                        "}\n"),
                 findings);
    EXPECT_EQ(countLifetimeRules(findings), 1);
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings[0].rule, "view-from-temporary");
}

TEST(Lifetime, RulesOnlyRunOnProductionCode)
{
    std::vector<Finding> findings;
    runFileRules("tools/analyzer/fixture.cc",
                 lexCpp(readFixture("view_from_temporary.cc")),
                 findings);
    EXPECT_EQ(countLifetimeRules(findings), 0);
}

// --------------------------------------------- --fix round trip

TEST(Lifetime, FixRoundTripMaterializesTheOwner)
{
    SourceTree tree = {{"src/graph/fix_me.cc",
                        readFixture("view_from_temporary.cc")}};
    AnalysisResult first = analyzeTree(tree, Baseline{}, 1);
    ASSERT_EQ(first.results.size(), 1u);
    EXPECT_EQ(first.results[0].finding.rule, "view-from-temporary");

    std::vector<std::string> changed = applyFixes(tree, first);
    ASSERT_EQ(changed.size(), 1u);
    EXPECT_EQ(changed[0], "src/graph/fix_me.cc");
    EXPECT_NE(
        tree[0].content.find("Graph dangling = makeGraph();"),
        std::string::npos)
        << tree[0].content;

    // Re-analyzing the fixed tree comes back clean.
    AnalysisResult second = analyzeTree(tree, Baseline{}, 1);
    EXPECT_TRUE(second.newFindings().empty());
}

// --------------------------------------------------- type tables

TEST(Lifetime, TypeTablesKnowTheRepoTypes)
{
    EXPECT_TRUE(isViewTypeName("GraphView"));
    EXPECT_TRUE(isViewTypeName("AdjacencyView"));
    EXPECT_TRUE(isViewTypeName("span"));
    EXPECT_TRUE(isViewTypeName("string_view"));
    EXPECT_FALSE(isViewTypeName("Graph"));
    EXPECT_TRUE(isOwningTypeName("Graph"));
    EXPECT_TRUE(isOwningTypeName("MappedGraph"));
    EXPECT_TRUE(isOwningTypeName("vector"));
    EXPECT_FALSE(isOwningTypeName("GraphView"));
}

} // namespace
} // namespace gral::analyzer
