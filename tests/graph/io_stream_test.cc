/**
 * @file
 * Tests for the chunked streaming text edge-list parser.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/io.h"

namespace gral
{
namespace
{

std::vector<Edge>
collect(const std::string &text, std::size_t chunk_edges,
        std::vector<std::size_t> *chunk_sizes = nullptr)
{
    std::istringstream in(text);
    std::vector<Edge> edges;
    std::size_t total = readEdgeListTextChunked(
        in, chunk_edges, [&](std::span<const Edge> chunk) {
            if (chunk_sizes)
                chunk_sizes->push_back(chunk.size());
            edges.insert(edges.end(), chunk.begin(), chunk.end());
        });
    EXPECT_EQ(total, edges.size());
    return edges;
}

TEST(StreamingTextIo, DeliversBoundedChunks)
{
    std::string text;
    for (int i = 0; i < 10; ++i)
        text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
    std::vector<std::size_t> sizes;
    std::vector<Edge> edges = collect(text, 3, &sizes);
    ASSERT_EQ(edges.size(), 10u);
    // 3+3+3+1: every chunk bounded by the requested size.
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 3u);
    EXPECT_EQ(sizes[3], 1u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(edges[static_cast<std::size_t>(i)],
                  (Edge{static_cast<VertexId>(i),
                        static_cast<VertexId>(i + 1)}));
}

TEST(StreamingTextIo, SkipsCommentsAndBlankLines)
{
    std::vector<Edge> edges =
        collect("# header\n0 1\n% note\n\n2 3\n", 64);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{2, 3}));
}

TEST(StreamingTextIo, HandlesMissingTrailingNewline)
{
    std::vector<Edge> edges = collect("0 1\n2 3", 64);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[1], (Edge{2, 3}));
}

TEST(StreamingTextIo, IgnoresTrailingFieldsAndCarriageReturns)
{
    // KONECT-style lines carry weights/timestamps; Windows files \r.
    std::vector<Edge> edges =
        collect("0 1 17 999\r\n2\t3\t0.5\n", 64);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{2, 3}));
}

TEST(StreamingTextIo, LineSpanningReadBlocksParses)
{
    // Force the carry path: a comment longer than the 1 MB read
    // block pushes the following edges across block boundaries.
    std::string text = "# " + std::string(3u << 20, 'x') + "\n";
    text += "7 9\n11 13\n";
    std::vector<Edge> edges = collect(text, 64);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Edge{7, 9}));
    EXPECT_EQ(edges[1], (Edge{11, 13}));
}

TEST(StreamingTextIo, BadLineThrows)
{
    std::istringstream in("0 1\nbanana split\n");
    EXPECT_THROW((void)readEdgeListTextChunked(
                     in, 64, [](std::span<const Edge>) {}),
                 std::runtime_error);
}

TEST(StreamingTextIo, MissingSecondFieldThrows)
{
    std::istringstream in("42\n");
    EXPECT_THROW((void)readEdgeListTextChunked(
                     in, 64, [](std::span<const Edge>) {}),
                 std::runtime_error);
}

TEST(StreamingTextIo, HugeIdThrows)
{
    std::istringstream in("0 99999999999\n");
    EXPECT_THROW((void)readEdgeListTextChunked(
                     in, 64, [](std::span<const Edge>) {}),
                 std::runtime_error);
}

TEST(StreamingTextIo, MaxValidIdAccepted)
{
    std::string max = std::to_string(kInvalidVertex - 1);
    std::vector<Edge> edges = collect("0 " + max + "\n", 64);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].dst, kInvalidVertex - 1);
}

TEST(StreamingTextIo, SentinelIdRejected)
{
    // kInvalidVertex itself is reserved.
    std::string bad = std::to_string(kInvalidVertex);
    std::istringstream in("0 " + bad + "\n");
    EXPECT_THROW((void)readEdgeListTextChunked(
                     in, 64, [](std::span<const Edge>) {}),
                 std::runtime_error);
}

TEST(StreamingTextIo, FileVariantStreams)
{
    std::string path =
        testing::TempDir() + "/gral_stream_test.txt";
    {
        std::ofstream out(path);
        for (int i = 0; i < 100; ++i)
            out << i << " " << (i + 1) << "\n";
    }
    std::size_t chunks = 0;
    std::size_t total = readEdgeListTextChunkedFile(
        path, 32, [&](std::span<const Edge> chunk) {
            ++chunks;
            EXPECT_LE(chunk.size(), 32u);
        });
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(chunks, 4u);
    EXPECT_THROW((void)readEdgeListTextChunkedFile(
                     "/nonexistent/edges.txt", 32,
                     [](std::span<const Edge>) {}),
                 std::runtime_error);
}

TEST(StreamingTextIo, MatchesMaterializingReader)
{
    std::string text;
    for (int i = 0; i < 257; ++i)
        text +=
            std::to_string(i * 3) + " " + std::to_string(i) + "\n";
    std::istringstream a(text);
    std::vector<Edge> whole = readEdgeListText(a);
    std::vector<Edge> streamed = collect(text, 17);
    EXPECT_EQ(whole, streamed);
}

} // namespace
} // namespace gral
