/**
 * @file
 * Unit tests for GraphBuilder cleanup (dedup, self loops, zero-degree
 * compaction) and symmetrize().
 */

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gral
{
namespace
{

TEST(GraphBuilder, GrowsVertexCount)
{
    GraphBuilder builder;
    builder.addEdge(0, 9);
    EXPECT_EQ(builder.numVertices(), 10u);
    builder.addEdge(20, 1);
    EXPECT_EQ(builder.numVertices(), 21u);
}

TEST(GraphBuilder, RemovesSelfLoops)
{
    GraphBuilder builder;
    builder.addEdge(0, 0);
    builder.addEdge(0, 1);
    builder.addEdge(1, 1);
    Graph graph = builder.finalize();
    EXPECT_EQ(graph.numEdges(), 1u);
}

TEST(GraphBuilder, KeepsSelfLoopsWhenAsked)
{
    GraphBuilder builder;
    builder.addEdge(0, 0);
    builder.addEdge(0, 1);
    BuildOptions options;
    options.removeSelfLoops = false;
    Graph graph = builder.finalize(options);
    EXPECT_EQ(graph.numEdges(), 2u);
}

TEST(GraphBuilder, RemovesDuplicates)
{
    GraphBuilder builder;
    builder.addEdge(0, 1);
    builder.addEdge(0, 1);
    builder.addEdge(1, 0);
    Graph graph = builder.finalize();
    EXPECT_EQ(graph.numEdges(), 2u);
}

TEST(GraphBuilder, CompactsZeroDegreeVertices)
{
    GraphBuilder builder(10); // vertices 0..9, most isolated
    builder.addEdge(2, 7);
    std::vector<VertexId> remap;
    Graph graph = builder.finalize({}, &remap);
    EXPECT_EQ(graph.numVertices(), 2u);
    EXPECT_EQ(graph.numEdges(), 1u);
    EXPECT_EQ(remap[2], 0u);
    EXPECT_EQ(remap[7], 1u);
    EXPECT_EQ(remap[0], kInvalidVertex);
    EXPECT_EQ(remap[9], kInvalidVertex);
}

TEST(GraphBuilder, ZeroDegreeKeptWhenDisabled)
{
    GraphBuilder builder(10);
    builder.addEdge(2, 7);
    BuildOptions options;
    options.removeZeroDegree = false;
    std::vector<VertexId> remap;
    Graph graph = builder.finalize(options, &remap);
    EXPECT_EQ(graph.numVertices(), 10u);
    for (VertexId v = 0; v < 10; ++v)
        EXPECT_EQ(remap[v], v);
}

TEST(GraphBuilder, FinalizeLeavesBuilderEmpty)
{
    GraphBuilder builder;
    builder.addEdge(0, 1);
    builder.finalize();
    EXPECT_EQ(builder.numEdges(), 0u);
}

TEST(GraphBuilder, AddEdgesBatch)
{
    GraphBuilder builder;
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
    builder.addEdges(edges);
    EXPECT_EQ(builder.numEdges(), 3u);
    Graph graph = builder.finalize();
    EXPECT_EQ(graph.numEdges(), 3u);
}

TEST(Symmetrize, AddsReverseEdges)
{
    std::vector<Edge> edges = {{0, 1}, {1, 2}};
    Graph graph = buildGraph(3, edges);
    Graph sym = symmetrize(graph);
    EXPECT_EQ(sym.numEdges(), 4u);
    EXPECT_TRUE(sym.out().hasNeighbour(1, 0));
    EXPECT_TRUE(sym.out().hasNeighbour(2, 1));
}

TEST(Symmetrize, AlreadySymmetricUnchanged)
{
    std::vector<Edge> edges = {{0, 1}, {1, 0}};
    Graph graph = buildGraph(2, edges);
    Graph sym = symmetrize(graph);
    EXPECT_EQ(sym.numEdges(), 2u);
}

TEST(Symmetrize, InOutDegreesEqual)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {3, 0}, {2, 1}};
    Graph sym = symmetrize(buildGraph(4, edges));
    for (VertexId v = 0; v < sym.numVertices(); ++v)
        EXPECT_EQ(sym.inDegree(v), sym.outDegree(v));
}

} // namespace
} // namespace gral
