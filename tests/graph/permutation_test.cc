/**
 * @file
 * Unit and property tests for Permutation and applyPermutation.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "graph/permutation.h"

namespace gral
{
namespace
{

TEST(Permutation, Identity)
{
    Permutation p = Permutation::identity(5);
    EXPECT_TRUE(p.isValid());
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(p.newId(v), v);
}

TEST(Permutation, ValidityChecks)
{
    EXPECT_TRUE(Permutation({2, 0, 1}).isValid());
    EXPECT_FALSE(Permutation({0, 0, 1}).isValid()); // repeated
    EXPECT_FALSE(Permutation({0, 3, 1}).isValid()); // out of range
    EXPECT_TRUE(
        Permutation(std::vector<VertexId>{}).isValid()); // empty OK
}

TEST(Permutation, Inverse)
{
    Permutation p({2, 0, 1});
    Permutation inv = p.inverse();
    for (VertexId v = 0; v < 3; ++v)
        EXPECT_EQ(inv.newId(p.newId(v)), v);
}

TEST(Permutation, ComposeAppliesRightFirst)
{
    Permutation first({1, 2, 0});  // v -> v+1 mod 3
    Permutation second({2, 0, 1}); // v -> v-1 mod 3
    Permutation composed = second.compose(first);
    for (VertexId v = 0; v < 3; ++v)
        EXPECT_EQ(composed.newId(v), second.newId(first.newId(v)));
    // second undoes first here.
    EXPECT_EQ(composed, Permutation::identity(3));
}

TEST(Permutation, ComposeSizeMismatchThrows)
{
    Permutation a = Permutation::identity(3);
    Permutation b = Permutation::identity(4);
    EXPECT_THROW((void)a.compose(b), std::invalid_argument);
}

TEST(ApplyPermutation, RelabelsEdges)
{
    std::vector<Edge> edges = {{0, 1}, {1, 2}};
    Graph graph(3, edges);
    Permutation p({2, 0, 1}); // 0->2, 1->0, 2->1
    Graph relabeled = applyPermutation(graph, p);
    EXPECT_TRUE(relabeled.out().hasNeighbour(2, 0)); // was (0,1)
    EXPECT_TRUE(relabeled.out().hasNeighbour(0, 1)); // was (1,2)
    EXPECT_EQ(relabeled.numEdges(), 2u);
}

TEST(ApplyPermutation, SizeMismatchThrows)
{
    Graph graph = makePath(4);
    Permutation p = Permutation::identity(3);
    EXPECT_THROW((void)applyPermutation(graph, p),
                 std::invalid_argument);
}

TEST(ApplyPermutation, RelabelsVertexValues)
{
    std::vector<int> values = {10, 11, 12};
    Permutation p({2, 0, 1});
    std::vector<int> moved =
        applyPermutation<int>(values, p);
    EXPECT_EQ(moved[2], 10);
    EXPECT_EQ(moved[0], 11);
    EXPECT_EQ(moved[1], 12);
}

TEST(RandomPermutation, IsValidAndSeedDeterministic)
{
    Permutation a = randomPermutation(1000, 9);
    Permutation b = randomPermutation(1000, 9);
    Permutation c = randomPermutation(1000, 10);
    EXPECT_TRUE(a.isValid());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

/** Property sweep: inverse composes to identity for random sizes. */
class PermutationProperty : public ::testing::TestWithParam<VertexId>
{
};

TEST_P(PermutationProperty, InverseComposesToIdentity)
{
    VertexId n = GetParam();
    Permutation p = randomPermutation(n, 1234 + n);
    ASSERT_TRUE(p.isValid());
    EXPECT_EQ(p.inverse().compose(p), Permutation::identity(n));
    EXPECT_EQ(p.compose(p.inverse()), Permutation::identity(n));
}

TEST_P(PermutationProperty, RelabelingPreservesStructure)
{
    VertexId n = GetParam();
    if (n < 2)
        return;
    Graph graph = generateErdosRenyi(n, n * 4, n);
    Permutation p = randomPermutation(graph.numVertices(), n);
    Graph relabeled = applyPermutation(graph, p);

    EXPECT_EQ(relabeled.numVertices(), graph.numVertices());
    EXPECT_EQ(relabeled.numEdges(), graph.numEdges());
    // Degree multiset must be preserved vertex-by-vertex under p.
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        EXPECT_EQ(relabeled.outDegree(p.newId(v)), graph.outDegree(v));
        EXPECT_EQ(relabeled.inDegree(p.newId(v)), graph.inDegree(v));
    }
    // Applying the inverse returns the original graph.
    EXPECT_EQ(applyPermutation(relabeled, p.inverse()), graph);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationProperty,
                         ::testing::Values(1, 2, 3, 10, 64, 257,
                                           1000));

} // namespace
} // namespace gral
