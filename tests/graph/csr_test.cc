/**
 * @file
 * Unit tests for the Adjacency (CSR/CSC) container.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/csr.h"

namespace gral
{
namespace
{

TEST(Adjacency, EmptyByDefault)
{
    Adjacency adj;
    EXPECT_EQ(adj.numVertices(), 0u);
    EXPECT_EQ(adj.numEdges(), 0u);
}

TEST(Adjacency, BuildFromArrays)
{
    Adjacency adj({0, 2, 3, 3}, {1, 2, 0});
    EXPECT_EQ(adj.numVertices(), 3u);
    EXPECT_EQ(adj.numEdges(), 3u);
    EXPECT_EQ(adj.degree(0), 2u);
    EXPECT_EQ(adj.degree(1), 1u);
    EXPECT_EQ(adj.degree(2), 0u);
}

TEST(Adjacency, NeighboursSpan)
{
    Adjacency adj({0, 2, 3, 3}, {1, 2, 0});
    auto n0 = adj.neighbours(0);
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(n0[0], 1u);
    EXPECT_EQ(n0[1], 2u);
    EXPECT_TRUE(adj.neighbours(2).empty());
}

TEST(Adjacency, RejectsMalformedOffsets)
{
    EXPECT_THROW(Adjacency({}, {}), std::invalid_argument);
    EXPECT_THROW(Adjacency({1, 2}, {0}), std::invalid_argument);
    // back != edges.size()
    EXPECT_THROW(Adjacency({0, 3}, {0}), std::invalid_argument);
    // non-monotone
    EXPECT_THROW(Adjacency({0, 2, 1, 3}, {0, 1, 2}),
                 std::invalid_argument);
}

TEST(Adjacency, HasNeighbourBinarySearch)
{
    Adjacency adj({0, 3, 3}, {0, 3, 7});
    EXPECT_TRUE(adj.hasNeighbour(0, 0));
    EXPECT_TRUE(adj.hasNeighbour(0, 3));
    EXPECT_TRUE(adj.hasNeighbour(0, 7));
    EXPECT_FALSE(adj.hasNeighbour(0, 5));
    EXPECT_FALSE(adj.hasNeighbour(1, 0));
}

TEST(Adjacency, SortNeighbours)
{
    Adjacency adj({0, 3}, {7, 3, 0});
    EXPECT_FALSE(adj.neighboursSorted());
    adj.sortNeighbours();
    EXPECT_TRUE(adj.neighboursSorted());
    EXPECT_EQ(adj.neighbours(0)[0], 0u);
    EXPECT_EQ(adj.neighbours(0)[2], 7u);
}

TEST(Adjacency, EdgeIndices)
{
    Adjacency adj({0, 2, 5}, {1, 2, 0, 1, 2});
    EXPECT_EQ(adj.beginEdge(0), 0u);
    EXPECT_EQ(adj.endEdge(0), 2u);
    EXPECT_EQ(adj.beginEdge(1), 2u);
    EXPECT_EQ(adj.endEdge(1), 5u);
}

TEST(Adjacency, FootprintUsesPaperElementSizes)
{
    Adjacency adj({0, 2, 3}, {1, 0, 0});
    // 3 offsets x 8 B + 3 edges x 4 B.
    EXPECT_EQ(adj.footprintBytes(), 3 * 8 + 3 * 4);
}

TEST(BuildAdjacency, BySourceAndByDestination)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {2, 1}};
    Adjacency csr = buildAdjacency(3, edges, /*by_source=*/true);
    Adjacency csc = buildAdjacency(3, edges, /*by_source=*/false);

    EXPECT_EQ(csr.degree(0), 2u); // out-degree
    EXPECT_EQ(csr.degree(2), 1u);
    EXPECT_EQ(csc.degree(1), 2u); // in-degree
    EXPECT_EQ(csc.degree(0), 0u);
    EXPECT_TRUE(csr.hasNeighbour(0, 2));
    EXPECT_TRUE(csc.hasNeighbour(1, 2));
}

TEST(BuildAdjacency, ProducesSortedNeighbours)
{
    std::vector<Edge> edges = {{0, 9}, {0, 1}, {0, 5}, {0, 3}};
    Adjacency csr = buildAdjacency(10, edges, true);
    EXPECT_TRUE(csr.neighboursSorted());
}

TEST(BuildAdjacency, EmptyEdgeList)
{
    Adjacency csr = buildAdjacency(4, {}, true);
    EXPECT_EQ(csr.numVertices(), 4u);
    EXPECT_EQ(csr.numEdges(), 0u);
    for (VertexId v = 0; v < 4; ++v)
        EXPECT_EQ(csr.degree(v), 0u);
}

TEST(BuildAdjacency, DuplicateEdgesPreserved)
{
    std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}};
    Adjacency csr = buildAdjacency(2, edges, true);
    EXPECT_EQ(csr.degree(0), 3u);
}

} // namespace
} // namespace gral
