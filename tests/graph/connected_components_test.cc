/**
 * @file
 * Unit tests for connected components with active-subset support.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"
#include "graph/connected_components.h"
#include "graph/generators.h"
#include "graph/union_find.h"

namespace gral
{
namespace
{

TEST(ConnectedComponents, SingleComponentPath)
{
    Graph graph = makePath(5);
    ComponentResult result = connectedComponents(graph);
    EXPECT_EQ(result.numComponents, 1u);
    EXPECT_EQ(result.vertexCount[0], 5u);
}

TEST(ConnectedComponents, DisjointPieces)
{
    // Two triangles and an isolated vertex.
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0},
                               {3, 4}, {4, 5}, {5, 3}};
    BuildOptions options;
    options.removeZeroDegree = false;
    Graph graph = buildGraph(7, edges, options);
    ComponentResult result = connectedComponents(graph);
    EXPECT_EQ(result.numComponents, 3u);
    EXPECT_EQ(result.label[0], result.label[2]);
    EXPECT_EQ(result.label[3], result.label[5]);
    EXPECT_NE(result.label[0], result.label[3]);
    EXPECT_NE(result.label[6], result.label[0]);
}

TEST(ConnectedComponents, DirectionIgnored)
{
    // A directed chain is one undirected component.
    std::vector<Edge> edges = {{0, 1}, {2, 1}, {2, 3}};
    Graph graph(4, edges);
    ComponentResult result = connectedComponents(graph);
    EXPECT_EQ(result.numComponents, 1u);
}

TEST(ConnectedComponents, ActiveMaskSplitsGraph)
{
    Graph graph = makePath(5); // 0-1-2-3-4
    std::vector<char> active(5, 1);
    active[2] = 0; // removing the middle splits the path
    ComponentResult result = connectedComponents(graph, active);
    EXPECT_EQ(result.numComponents, 2u);
    EXPECT_EQ(result.label[2], kInvalidVertex);
    EXPECT_EQ(result.label[0], result.label[1]);
    EXPECT_EQ(result.label[3], result.label[4]);
    EXPECT_NE(result.label[0], result.label[3]);
}

TEST(ConnectedComponents, GiantSelection)
{
    // A 4-clique (12 directed edges) and a 2-path.
    std::vector<Edge> edges;
    for (VertexId u = 0; u < 4; ++u)
        for (VertexId v = 0; v < 4; ++v)
            if (u != v)
                edges.push_back({u, v});
    edges.push_back({4, 5});
    edges.push_back({5, 4});
    Graph graph(6, edges);
    ComponentResult result = connectedComponents(graph);
    ASSERT_EQ(result.numComponents, 2u);
    EXPECT_EQ(result.giantByEdges(), result.label[0]);
    EXPECT_EQ(result.giantByVertices(), result.label[0]);
}

TEST(ConnectedComponents, GiantByEdgesPrefersDenser)
{
    // Component A: star on 5 vertices (4 undirected edges,
    // 5 vertices). Component B: 4-clique (6 undirected edges,
    // 4 vertices). Giant-by-vertices is A, giant-by-edges is B.
    std::vector<Edge> edges;
    for (VertexId leaf = 1; leaf < 5; ++leaf) {
        edges.push_back({0, leaf});
        edges.push_back({leaf, 0});
    }
    for (VertexId u = 5; u < 9; ++u)
        for (VertexId v = 5; v < 9; ++v)
            if (u != v)
                edges.push_back({u, v});
    Graph graph(9, edges);
    ComponentResult result = connectedComponents(graph);
    ASSERT_EQ(result.numComponents, 2u);
    EXPECT_EQ(result.giantByVertices(), result.label[0]);
    EXPECT_EQ(result.giantByEdges(), result.label[5]);
}

TEST(ConnectedComponents, EmptyActiveMask)
{
    Graph graph = makePath(3);
    std::vector<char> active(3, 0);
    ComponentResult result = connectedComponents(graph, active);
    EXPECT_EQ(result.numComponents, 0u);
    EXPECT_EQ(result.giantByEdges(), kInvalidVertex);
}

TEST(ConnectedComponents, WrongMaskSizeThrows)
{
    Graph graph = makePath(3);
    std::vector<char> active(2, 1);
    EXPECT_THROW((void)connectedComponents(graph, active),
                 std::invalid_argument);
}

TEST(ConnectedComponents, AgreesWithUnionFindOracle)
{
    Graph graph = generateErdosRenyi(300, 400, 5);
    ComponentResult result = connectedComponents(graph);

    UnionFind oracle(graph.numVertices());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (VertexId u : graph.outNeighbours(v))
            oracle.unite(v, u);

    EXPECT_EQ(result.numComponents, oracle.numComponents());
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (VertexId u = v + 1; u < graph.numVertices(); ++u)
            EXPECT_EQ(result.label[v] == result.label[u],
                      oracle.connected(v, u));
}

} // namespace
} // namespace gral
