/**
 * @file
 * Tests for the graph-side structural validators (graph/validate.h):
 * corrupted CSR arrays and non-bijective permutations must each be
 * rejected with an actionable message.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/validate.h"

namespace gral
{
namespace
{

std::string
messageOf(const std::function<void()> &action)
{
    try {
        action();
    } catch (const ValidationError &error) {
        return error.what();
    }
    return {};
}

// ---------------------------------------------------------------- CSR

TEST(ValidateCsr, AcceptsWellFormedAdjacency)
{
    Graph graph = generateErdosRenyi(120, 900, 3);
    EXPECT_NO_THROW(validateCsr(graph.out()));
    EXPECT_NO_THROW(validateCsr(graph.in()));
    EXPECT_NO_THROW(validateGraph(graph));
}

TEST(ValidateCsr, AcceptsEmptyAdjacency)
{
    std::vector<EdgeId> offsets{0};
    std::vector<VertexId> edges;
    EXPECT_NO_THROW(validateCsr(offsets, edges));
}

TEST(ValidateCsr, RejectsEmptyOffsetsArray)
{
    std::vector<EdgeId> offsets;
    std::vector<VertexId> edges;
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsNonZeroBase)
{
    std::vector<EdgeId> offsets{1, 2};
    std::vector<VertexId> edges{0, 0};
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsNonMonotoneOffsets)
{
    std::vector<EdgeId> offsets{0, 3, 2, 4};
    std::vector<VertexId> edges{1, 2, 0, 1};
    std::string what = messageOf(
        [&] { validateCsr(offsets, edges, "fixture"); });
    EXPECT_NE(what.find("not monotone"), std::string::npos) << what;
    EXPECT_NE(what.find("fixture"), std::string::npos) << what;
}

TEST(ValidateCsr, RejectsOffsetsEdgeCountMismatch)
{
    std::vector<EdgeId> offsets{0, 1, 3};
    std::vector<VertexId> edges{1};
    EXPECT_THROW(validateCsr(offsets, edges), ValidationError);
}

TEST(ValidateCsr, RejectsOutOfRangeColumnIndex)
{
    std::vector<EdgeId> offsets{0, 2, 2};
    std::vector<VertexId> edges{1, 9}; // |V| == 2, so 9 is garbage
    std::string what = messageOf([&] { validateCsr(offsets, edges); });
    EXPECT_NE(what.find(">= |V|"), std::string::npos) << what;
}

TEST(ValidateCsr, RejectsUnsortedNeighbourList)
{
    std::vector<EdgeId> offsets{0, 3, 3, 3};
    std::vector<VertexId> edges{2, 0, 1};
    std::string what = messageOf([&] { validateCsr(offsets, edges); });
    EXPECT_NE(what.find("not sorted"), std::string::npos) << what;
}

// -------------------------------------------------------- permutation

TEST(ValidatePermutation, AcceptsIdentityAndShuffle)
{
    EXPECT_NO_THROW(validatePermutation(Permutation::identity(64), 64));
    EXPECT_NO_THROW(
        validatePermutation(randomPermutation(64, 99), 64));
}

TEST(ValidatePermutation, RejectsSizeMismatch)
{
    EXPECT_THROW(validatePermutation(Permutation::identity(10), 11),
                 ValidationError);
}

TEST(ValidatePermutation, RejectsDuplicateNewIds)
{
    Permutation p(std::vector<VertexId>{0, 1, 1, 3});
    std::string what = messageOf(
        [&] { validatePermutation(p, 4, "my-ra"); });
    EXPECT_NE(what.find("not a bijection"), std::string::npos) << what;
    EXPECT_NE(what.find("my-ra"), std::string::npos) << what;
}

TEST(ValidatePermutation, RejectsOutOfRangeNewId)
{
    Permutation p(std::vector<VertexId>{0, 7, 2, 3});
    std::string what = messageOf([&] { validatePermutation(p, 4); });
    EXPECT_NE(what.find("outside [0, 4)"), std::string::npos) << what;
}

} // namespace
} // namespace gral
