/**
 * @file
 * Tests for the synthetic generators, including the structural
 * properties the paper's dataset analysis relies on (Section VII).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/asymmetricity.h"

namespace gral
{
namespace
{

TEST(SmallGraphs, PathShape)
{
    Graph graph = makePath(4);
    EXPECT_EQ(graph.numVertices(), 4u);
    EXPECT_EQ(graph.numEdges(), 6u); // 3 undirected edges, both ways
    EXPECT_EQ(graph.outDegree(0), 1u);
    EXPECT_EQ(graph.outDegree(1), 2u);
}

TEST(SmallGraphs, CycleShape)
{
    Graph graph = makeCycle(5);
    EXPECT_EQ(graph.numEdges(), 10u);
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(graph.outDegree(v), 2u);
}

TEST(SmallGraphs, StarShape)
{
    Graph graph = makeStar(6);
    EXPECT_EQ(graph.outDegree(0), 5u);
    EXPECT_EQ(graph.inDegree(0), 5u);
    for (VertexId v = 1; v < 6; ++v)
        EXPECT_EQ(graph.outDegree(v), 1u);
}

TEST(SmallGraphs, CompleteShape)
{
    Graph graph = makeComplete(5);
    EXPECT_EQ(graph.numEdges(), 20u);
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(graph.outDegree(v), 4u);
}

TEST(SmallGraphs, GridShape)
{
    Graph graph = makeGrid(3, 4);
    EXPECT_EQ(graph.numVertices(), 12u);
    // Corner has 2 neighbours, edge 3, inner 4.
    EXPECT_EQ(graph.outDegree(0), 2u);
    EXPECT_EQ(graph.outDegree(1), 3u);
    EXPECT_EQ(graph.outDegree(5), 4u);
}

TEST(ErdosRenyi, SeedDeterminism)
{
    Graph a = generateErdosRenyi(500, 3000, 42);
    Graph b = generateErdosRenyi(500, 3000, 42);
    Graph c = generateErdosRenyi(500, 3000, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(ErdosRenyi, RoughlyUniformDegrees)
{
    Graph graph = generateErdosRenyi(1000, 20000, 1);
    // No vertex should be a sqrt(|V|) hub in a uniform graph of
    // average degree ~20.
    EXPECT_LT(maxDegree(graph, Direction::Out), 80u);
}

TEST(RMat, SkewedDegrees)
{
    RMatParams params;
    params.scale = 12;
    params.edgeFactor = 16;
    Graph graph = generateRMat(params);
    // R-MAT with Graph500 parameters produces hubs far above the
    // uniform expectation.
    EXPECT_GT(maxDegree(graph, Direction::Out), 200u);
}

TEST(RMat, RejectsBadProbabilities)
{
    RMatParams params;
    params.a = 0.9;
    params.b = 0.9;
    EXPECT_THROW((void)generateRMat(params), std::invalid_argument);
}

TEST(SocialNetwork, SeedDeterminism)
{
    SocialNetworkParams params;
    params.numVertices = 2000;
    params.edgesPerVertex = 8;
    Graph a = generateSocialNetwork(params);
    Graph b = generateSocialNetwork(params);
    EXPECT_EQ(a, b);
    params.seed = 2;
    EXPECT_NE(a, generateSocialNetwork(params));
}

TEST(SocialNetwork, HeavyTailedWithHubs)
{
    SocialNetworkParams params;
    params.numVertices = 5000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    // Preferential attachment creates hubs well above sqrt(|V|)
    // (community bias moderates the tail at this small test size).
    EXPECT_GT(static_cast<double>(maxDegree(graph, Direction::In)),
              1.5 * hubThreshold(graph));
    EXPECT_FALSE(inHubs(graph).empty());
    EXPECT_FALSE(outHubs(graph).empty());
}

TEST(SocialNetwork, InHubsAreNearlySymmetric)
{
    SocialNetworkParams params;
    params.numVertices = 5000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    // Paper Fig. 4: social-network in-hubs are almost symmetric.
    double hub_asym = 0.0;
    auto hubs = inHubs(graph);
    ASSERT_FALSE(hubs.empty());
    for (VertexId v : hubs)
        hub_asym += vertexAsymmetricity(graph, v);
    hub_asym /= static_cast<double>(hubs.size());
    EXPECT_LT(hub_asym, 0.15);
}

TEST(SocialNetwork, LdvMoreAsymmetricThanHubs)
{
    SocialNetworkParams params;
    params.numVertices = 5000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    double threshold = hubThreshold(graph);
    double ldv_sum = 0.0;
    double hub_sum = 0.0;
    std::uint64_t ldv_count = 0;
    std::uint64_t hub_count = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (graph.inDegree(v) == 0)
            continue;
        double a = vertexAsymmetricity(graph, v);
        if (static_cast<double>(graph.inDegree(v)) > threshold) {
            hub_sum += a;
            ++hub_count;
        } else {
            ldv_sum += a;
            ++ldv_count;
        }
    }
    ASSERT_GT(ldv_count, 0u);
    ASSERT_GT(hub_count, 0u);
    EXPECT_GT(ldv_sum / ldv_count, hub_sum / hub_count);
}

TEST(SocialNetwork, TooFewVerticesThrows)
{
    SocialNetworkParams params;
    params.numVertices = 4;
    params.edgesPerVertex = 8;
    EXPECT_THROW((void)generateSocialNetwork(params),
                 std::invalid_argument);
}

TEST(WebGraph, SeedDeterminism)
{
    WebGraphParams params;
    params.numVertices = 3000;
    Graph a = generateWebGraph(params);
    Graph b = generateWebGraph(params);
    EXPECT_EQ(a, b);
}

TEST(WebGraph, StrongInHubsWeakOutHubs)
{
    WebGraphParams params;
    params.numVertices = 8000;
    params.meanOutDegree = 15.0;
    Graph graph = generateWebGraph(params);
    // Paper Fig. 6: web graphs have powerful in-hubs but bounded
    // out-degrees.
    EXPECT_GT(maxDegree(graph, Direction::In),
              2 * maxDegree(graph, Direction::Out));
    EXPECT_LE(maxDegree(graph, Direction::Out), params.maxOutDegree);
}

TEST(WebGraph, HighAsymmetricityEverywhere)
{
    WebGraphParams params;
    params.numVertices = 8000;
    Graph graph = generateWebGraph(params);
    // Paper Fig. 4: web graphs lack symmetric in-hubs.
    EXPECT_GT(meanAsymmetricity(graph), 0.7);
}

TEST(WebGraph, ApproximatesRequestedAverageDegree)
{
    WebGraphParams params;
    params.numVertices = 10000;
    params.meanOutDegree = 20.0;
    Graph graph = generateWebGraph(params);
    EXPECT_GT(graph.averageDegree(), 10.0);
    EXPECT_LT(graph.averageDegree(), 30.0);
}

} // namespace
} // namespace gral
