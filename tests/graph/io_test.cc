/**
 * @file
 * Tests for text and binary graph serialization.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/io.h"

namespace gral
{
namespace
{

TEST(TextIo, ParsesEdgeList)
{
    std::istringstream in("# comment\n0 1\n% other comment\n2 3\n\n1 2\n");
    std::vector<Edge> edges = readEdgeListText(in);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{2, 3}));
    EXPECT_EQ(edges[2], (Edge{1, 2}));
}

TEST(TextIo, RejectsGarbage)
{
    std::istringstream in("0 not-a-number\n");
    EXPECT_THROW((void)readEdgeListText(in), std::runtime_error);
}

TEST(TextIo, RejectsHugeIds)
{
    std::istringstream in("0 99999999999\n");
    EXPECT_THROW((void)readEdgeListText(in), std::runtime_error);
}

TEST(TextIo, RoundTrip)
{
    Graph graph = makeCycle(6);
    std::ostringstream out;
    writeEdgeListText(graph, out);
    std::istringstream in(out.str());
    std::vector<Edge> edges = readEdgeListText(in);
    Graph back(graph.numVertices(), edges);
    EXPECT_EQ(back, graph);
}

TEST(TextIo, MissingFileThrows)
{
    EXPECT_THROW((void)readEdgeListTextFile("/nonexistent/file.txt"),
                 std::runtime_error);
}

TEST(BinaryIo, RoundTrip)
{
    Graph graph = generateErdosRenyi(300, 2000, 17);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    Graph back = readBinary(buffer);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, RoundTripEmptyGraph)
{
    std::vector<Edge> no_edges;
    Graph graph(3, no_edges);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    Graph back = readBinary(buffer);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, BadMagicRejected)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    buffer << "NOTAGRPH" << std::string(64, '\0');
    EXPECT_THROW((void)readBinary(buffer), std::runtime_error);
}

TEST(BinaryIo, TruncatedStreamRejected)
{
    Graph graph = makePath(10);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::istringstream truncated(bytes);
    EXPECT_THROW((void)readBinary(truncated), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip)
{
    Graph graph = makeGrid(5, 5);
    std::string path = testing::TempDir() + "/gral_io_test.bin";
    writeBinaryFile(graph, path);
    Graph back = readBinaryFile(path);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, MissingFileThrows)
{
    EXPECT_THROW((void)readBinaryFile("/nonexistent/graph.bin"),
                 std::runtime_error);
}

} // namespace
} // namespace gral
