/**
 * @file
 * Tests for text and binary graph serialization.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/io.h"

namespace gral
{
namespace
{

TEST(TextIo, ParsesEdgeList)
{
    std::istringstream in("# comment\n0 1\n% other comment\n2 3\n\n1 2\n");
    std::vector<Edge> edges = readEdgeListText(in);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0], (Edge{0, 1}));
    EXPECT_EQ(edges[1], (Edge{2, 3}));
    EXPECT_EQ(edges[2], (Edge{1, 2}));
}

TEST(TextIo, RejectsGarbage)
{
    std::istringstream in("0 not-a-number\n");
    EXPECT_THROW((void)readEdgeListText(in), std::runtime_error);
}

TEST(TextIo, RejectsHugeIds)
{
    std::istringstream in("0 99999999999\n");
    EXPECT_THROW((void)readEdgeListText(in), std::runtime_error);
}

TEST(TextIo, RoundTrip)
{
    Graph graph = makeCycle(6);
    std::ostringstream out;
    writeEdgeListText(graph, out);
    std::istringstream in(out.str());
    std::vector<Edge> edges = readEdgeListText(in);
    Graph back(graph.numVertices(), edges);
    EXPECT_EQ(back, graph);
}

TEST(TextIo, MissingFileThrows)
{
    EXPECT_THROW((void)readEdgeListTextFile("/nonexistent/file.txt"),
                 std::runtime_error);
}

TEST(BinaryIo, RoundTrip)
{
    Graph graph = generateErdosRenyi(300, 2000, 17);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    Graph back = readBinary(buffer);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, RoundTripEmptyGraph)
{
    std::vector<Edge> no_edges;
    Graph graph(3, no_edges);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    Graph back = readBinary(buffer);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, BadMagicRejected)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    buffer << "NOTAGRPH" << std::string(64, '\0');
    EXPECT_THROW((void)readBinary(buffer), std::runtime_error);
}

TEST(BinaryIo, TruncatedStreamRejected)
{
    Graph graph = makePath(10);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::istringstream truncated(bytes);
    EXPECT_THROW((void)readBinary(truncated), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip)
{
    Graph graph = makeGrid(5, 5);
    std::string path = testing::TempDir() + "/gral_io_test.bin";
    writeBinaryFile(graph, path);
    Graph back = readBinaryFile(path);
    EXPECT_EQ(back, graph);
}

TEST(BinaryIo, MissingFileThrows)
{
    EXPECT_THROW((void)readBinaryFile("/nonexistent/graph.bin"),
                 std::runtime_error);
}

TEST(BinaryIo, OutOfRangeEdgeEndpointRejected)
{
    Graph graph = makePath(10);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinary(graph, buffer);
    // The stream ends with the edge array; smash the final column
    // index to a value far beyond the vertex count.
    std::string bytes = buffer.str();
    VertexId garbage = 1000000;
    std::memcpy(bytes.data() + bytes.size() - sizeof(VertexId),
                &garbage, sizeof(VertexId));
    std::istringstream corrupted(bytes);
    EXPECT_THROW((void)readBinary(corrupted), std::runtime_error);
}

TEST(PermutationIo, RoundTrip)
{
    Permutation p = randomPermutation(40, 7);
    std::stringstream buffer;
    writePermutationText(p, buffer);
    Permutation back = readPermutationText(buffer);
    ASSERT_EQ(back.size(), p.size());
    for (VertexId v = 0; v < p.size(); ++v)
        EXPECT_EQ(back.newId(v), p.newId(v));
}

TEST(PermutationIo, SkipsCommentsAndBlankLines)
{
    std::istringstream in("# header\n2\n\n% other comment\n0\n1\n");
    Permutation p = readPermutationText(in);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.newId(0), 2u);
    EXPECT_EQ(p.newId(1), 0u);
    EXPECT_EQ(p.newId(2), 1u);
}

TEST(PermutationIo, RejectsGarbageLine)
{
    std::istringstream in("0\nbanana\n2\n");
    EXPECT_THROW((void)readPermutationText(in), std::runtime_error);
}

TEST(PermutationIo, RejectsHugeId)
{
    std::istringstream in("0\n4294967295\n");
    EXPECT_THROW((void)readPermutationText(in), std::runtime_error);
}

TEST(PermutationIo, NotBijectivityCheckedByDesign)
{
    // Parsing accepts a non-bijective array; callers run
    // validatePermutation() on untrusted input (the CLI does).
    std::istringstream in("0\n0\n0\n");
    Permutation p = readPermutationText(in);
    EXPECT_EQ(p.size(), 3u);
    EXPECT_FALSE(p.isValid());
}

TEST(PermutationIo, FileRoundTripAndMissingFile)
{
    Permutation p = randomPermutation(16, 3);
    std::string path = testing::TempDir() + "/gral_perm_test.txt";
    writePermutationTextFile(p, path);
    Permutation back = readPermutationTextFile(path);
    ASSERT_EQ(back.size(), p.size());
    EXPECT_TRUE(back.isValid());
    EXPECT_THROW((void)readPermutationTextFile("/nonexistent/p.txt"),
                 std::runtime_error);
}

} // namespace
} // namespace gral
