/**
 * @file
 * Unit and property tests for edge-balanced partitioning.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/partition.h"

namespace gral
{
namespace
{

TEST(Partition, CoversAllVerticesDisjointly)
{
    Graph graph = makeGrid(10, 10);
    auto parts = edgeBalancedPartitions(graph, Direction::Out, 4);
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts.front().begin, 0u);
    EXPECT_EQ(parts.back().end, graph.numVertices());
    for (std::size_t i = 1; i < parts.size(); ++i)
        EXPECT_EQ(parts[i].begin, parts[i - 1].end);
}

TEST(Partition, EdgeCountsRoughlyBalanced)
{
    Graph graph = generateErdosRenyi(2000, 20000, 3);
    auto parts = edgeBalancedPartitions(graph, Direction::In, 8);
    EdgeId total = 0;
    EdgeId target = graph.numEdges() / 8;
    for (const VertexRange &part : parts) {
        EdgeId count = edgesInRange(graph, Direction::In, part);
        total += count;
        // Each partition within 50% of the ideal share (slack for
        // boundary rounding).
        EXPECT_LE(count, target * 3 / 2 + 64);
    }
    EXPECT_EQ(total, graph.numEdges());
}

TEST(Partition, SkewedHubGetsOwnPartition)
{
    // Star graph: the centre holds all in-edges; partitions after the
    // centre's are mostly empty, but coverage must still hold.
    Graph graph = makeStar(1000);
    auto parts = edgeBalancedPartitions(graph, Direction::In, 4);
    EdgeId total = 0;
    for (const VertexRange &part : parts)
        total += edgesInRange(graph, Direction::In, part);
    EXPECT_EQ(total, graph.numEdges());
    EXPECT_EQ(parts.back().end, graph.numVertices());
}

TEST(Partition, SinglePartition)
{
    Graph graph = makePath(10);
    auto parts = edgeBalancedPartitions(graph, Direction::Out, 1);
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0].begin, 0u);
    EXPECT_EQ(parts[0].end, 10u);
}

TEST(Partition, MorePartitionsThanVertices)
{
    Graph graph = makePath(3);
    auto parts = edgeBalancedPartitions(graph, Direction::Out, 16);
    EXPECT_EQ(parts.size(), 16u);
    EXPECT_EQ(parts.back().end, graph.numVertices());
    EdgeId total = 0;
    for (const VertexRange &part : parts)
        total += edgesInRange(graph, Direction::Out, part);
    EXPECT_EQ(total, graph.numEdges());
}

class PartitionProperty : public ::testing::TestWithParam<VertexId>
{
};

TEST_P(PartitionProperty, AlwaysDisjointAndComplete)
{
    VertexId num_parts = GetParam();
    Graph graph = generateErdosRenyi(500, 5000, 11);
    auto parts =
        edgeBalancedPartitions(graph, Direction::In, num_parts);
    ASSERT_EQ(parts.size(), num_parts);
    VertexId cursor = 0;
    for (const VertexRange &part : parts) {
        EXPECT_EQ(part.begin, cursor);
        EXPECT_LE(part.begin, part.end);
        cursor = part.end;
    }
    EXPECT_EQ(cursor, graph.numVertices());
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 499,
                                           500, 777));

} // namespace
} // namespace gral
