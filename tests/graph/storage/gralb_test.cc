/**
 * @file
 * Tests for the `.gralb` memory-mapped binary CSR format: write/open
 * round-trips and the malformed-header regression suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/degree.h"
#include "graph/storage/gralb.h"
#include "graph/storage/varint.h"
#include "graph/validate.h"

namespace gral
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "/" + name;
}

std::vector<char>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Overwrite sizeof(T) bytes at @p offset of the file at @p path. */
template <typename T>
void
corrupt(const std::string &path, std::size_t offset, T value)
{
    std::vector<char> bytes = readFileBytes(path);
    ASSERT_GE(bytes.size(), offset + sizeof(T));
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
    writeFileBytes(path, bytes);
}

TEST(Gralb, UncompressedRoundTrip)
{
    Graph graph = generateErdosRenyi(400, 3000, 9);
    std::string path = tempPath("round.gralb");
    GralbWriteResult written = writeGralbFile(graph, path);
    EXPECT_GT(written.fileBytes, sizeof(GralbHeader));
    EXPECT_DOUBLE_EQ(written.compressedBytesPerEdge, 0.0);

    MappedGraph mapped = MappedGraph::open(path);
    EXPECT_EQ(mapped.numVertices(), graph.numVertices());
    EXPECT_EQ(mapped.numEdges(), graph.numEdges());
    EXPECT_FALSE(mapped.isCompressed());
    EXPECT_EQ(mapped.fileBytes(), written.fileBytes);
    EXPECT_EQ(mapped.header().maxOutDegree,
              maxDegree(graph, Direction::Out));
    EXPECT_EQ(mapped.header().maxInDegree,
              maxDegree(graph, Direction::In));
    EXPECT_EQ(materializeGraph(mapped.view()), graph);
}

TEST(Gralb, CompressedRoundTrip)
{
    Graph graph = generateErdosRenyi(300, 2400, 13);
    std::string path = tempPath("round_comp.gralb");
    GralbWriteOptions options;
    options.compressed = true;
    GralbWriteResult written = writeGralbFile(graph, path, options);
    EXPECT_GT(written.compressedBytesPerEdge, 0.0);
    // Sorted neighbour lists encode to a few bytes per edge — far
    // below the 4 raw bytes.
    EXPECT_LT(written.compressedBytesPerEdge, 4.0);

    MappedGraph mapped = MappedGraph::open(path);
    EXPECT_TRUE(mapped.isCompressed());
    EXPECT_TRUE(mapped.view().isCompressed());
    EXPECT_EQ(decodeGraph(mapped.view()), graph);
    EXPECT_LT(mapped.fileBytes(), writeGralbFile(
        graph, tempPath("round_raw.gralb")).fileBytes);
}

TEST(Gralb, EmptyGraphRoundTrips)
{
    std::vector<Edge> no_edges;
    Graph graph(5, no_edges);
    std::string path = tempPath("empty.gralb");
    writeGralbFile(graph, path);
    MappedGraph mapped = MappedGraph::open(path);
    EXPECT_EQ(mapped.numVertices(), 5u);
    EXPECT_EQ(mapped.numEdges(), 0u);
    EXPECT_EQ(materializeGraph(mapped.view()), graph);
}

TEST(Gralb, BothDirectionsStoredNoRebuild)
{
    // Unlike .grf, the CSC is stored, not rebuilt: the in-direction
    // spans come straight from the mapping and match the original.
    Graph graph = makeCycle(32);
    std::string path = tempPath("zerocopy.gralb");
    writeGralbFile(graph, path);
    MappedGraph mapped = MappedGraph::open(path);
    EXPECT_EQ(mapped.view().out().edges().size(), graph.numEdges());
    EXPECT_EQ(mapped.view().in().edges().size(), graph.numEdges());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        std::span<const VertexId> got =
            mapped.view().inNeighbours(v);
        std::span<const VertexId> expected = graph.inNeighbours(v);
        ASSERT_TRUE(std::equal(got.begin(), got.end(),
                               expected.begin(), expected.end()));
    }
}

TEST(Gralb, MissingFileThrows)
{
    EXPECT_THROW((void)MappedGraph::open("/nonexistent/g.gralb"),
                 std::runtime_error);
}

TEST(Gralb, FileSmallerThanHeaderRejected)
{
    std::string path = tempPath("tiny.gralb");
    writeFileBytes(path, std::vector<char>(64, '\0'));
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, BadMagicRejected)
{
    Graph graph = makePath(10);
    std::string path = tempPath("magic.gralb");
    writeGralbFile(graph, path);
    corrupt<char>(path, 0, 'X');
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, FutureVersionRejectedWithHint)
{
    Graph graph = makePath(10);
    std::string path = tempPath("version.gralb");
    writeGralbFile(graph, path);
    corrupt<std::uint32_t>(path, 8, kGralbVersion + 1);
    try {
        (void)MappedGraph::open(path);
        FAIL() << "version mismatch not diagnosed";
    } catch (const ValidationError &error) {
        // The message must tell the user how to recover.
        EXPECT_NE(std::string(error.what()).find("gral convert"),
                  std::string::npos)
            << error.what();
    }
}

TEST(Gralb, ByteSwappedEndianProbeRejected)
{
    Graph graph = makePath(10);
    std::string path = tempPath("endian.gralb");
    writeGralbFile(graph, path);
    corrupt<std::uint32_t>(path, 12, 0x04030201);
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, UnknownFlagBitsRejected)
{
    Graph graph = makePath(10);
    std::string path = tempPath("flags.gralb");
    writeGralbFile(graph, path);
    corrupt<std::uint64_t>(path, 16, std::uint64_t{1} << 17);
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, TruncatedFileRejected)
{
    Graph graph = generateErdosRenyi(100, 800, 3);
    std::string path = tempPath("trunc.gralb");
    writeGralbFile(graph, path);
    std::vector<char> bytes = readFileBytes(path);
    bytes.resize(bytes.size() - 1);
    writeFileBytes(path, bytes);
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, SectionBeyondFileRejected)
{
    Graph graph = makePath(10);
    std::string path = tempPath("section.gralb");
    writeGralbFile(graph, path);
    // Point the out-offsets section past the end of the file
    // (descriptor block starts at byte 64).
    corrupt<std::uint64_t>(path, 64, std::uint64_t{1} << 40);
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, VertexCountOverflowRejected)
{
    Graph graph = makePath(10);
    std::string path = tempPath("count.gralb");
    writeGralbFile(graph, path);
    corrupt<std::uint64_t>(path, 24,
                           std::uint64_t{kInvalidVertex} + 1);
    EXPECT_THROW((void)MappedGraph::open(path), ValidationError);
}

TEST(Gralb, ValidateHeaderNamesTheFile)
{
    GralbHeader header; // defaults: valid magic/version/probe
    try {
        validateGralbHeader(header, 0, "some.gralb");
        FAIL() << "zero-byte file accepted";
    } catch (const ValidationError &error) {
        EXPECT_NE(std::string(error.what()).find("some.gralb"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace gral
