/**
 * @file
 * Tests for the delta+varint neighbour-list codec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/storage/varint.h"

namespace gral
{
namespace
{

std::vector<VertexId>
roundTrip(const std::vector<VertexId> &list, bool &ok)
{
    std::vector<std::uint8_t> bytes;
    encodeNeighbourList(list, bytes);
    std::vector<VertexId> decoded(list.size());
    ok = decodeNeighbourList(bytes, decoded);
    return decoded;
}

TEST(Varint, SingleByteValuesRoundTrip)
{
    for (std::uint64_t value : {0ull, 1ull, 127ull}) {
        std::vector<std::uint8_t> bytes;
        appendVarint(value, bytes);
        EXPECT_EQ(bytes.size(), 1u);
        std::uint64_t back = 0;
        EXPECT_EQ(decodeVarint(bytes.data(),
                               bytes.data() + bytes.size(), back),
                  bytes.size());
        EXPECT_EQ(back, value);
    }
}

TEST(Varint, MultiByteValuesRoundTrip)
{
    for (std::uint64_t value :
         {std::uint64_t{128}, std::uint64_t{300},
          std::uint64_t{16383}, std::uint64_t{16384},
          std::uint64_t{kInvalidVertex},
          std::numeric_limits<std::uint64_t>::max()}) {
        std::vector<std::uint8_t> bytes;
        appendVarint(value, bytes);
        std::uint64_t back = 0;
        EXPECT_EQ(decodeVarint(bytes.data(),
                               bytes.data() + bytes.size(), back),
                  bytes.size());
        EXPECT_EQ(back, value);
        EXPECT_LE(bytes.size(), kMaxVarintBytes);
    }
}

TEST(Varint, TruncatedVarintReportsZero)
{
    std::vector<std::uint8_t> bytes;
    appendVarint(300, bytes); // two bytes
    std::uint64_t back = 0;
    EXPECT_EQ(decodeVarint(bytes.data(), bytes.data() + 1, back), 0u);
    EXPECT_EQ(decodeVarint(bytes.data(), bytes.data(), back), 0u);
}

TEST(Varint, OverlongEncodingRejected)
{
    // Eleven continuation bytes can never be a 64-bit varint.
    std::vector<std::uint8_t> bytes(11, 0x80);
    std::uint64_t back = 0;
    EXPECT_EQ(decodeVarint(bytes.data(),
                           bytes.data() + bytes.size(), back),
              0u);
}

TEST(Zigzag, RoundTripsSignedDeltas)
{
    for (std::int64_t value :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{63}, std::int64_t{-64},
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(value)), value);
    }
    // Small magnitudes — the common CSR deltas — stay small encoded.
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
}

TEST(NeighbourList, EmptyListEncodesToNothing)
{
    std::vector<std::uint8_t> bytes;
    encodeNeighbourList(std::vector<VertexId>{}, bytes);
    EXPECT_TRUE(bytes.empty());
    std::vector<VertexId> decoded;
    EXPECT_TRUE(decodeNeighbourList(bytes, decoded));
}

TEST(NeighbourList, SingleVertexRoundTrips)
{
    bool ok = false;
    for (VertexId v : {VertexId{0}, VertexId{7},
                       VertexId{kInvalidVertex - 1}}) {
        std::vector<VertexId> list = {v};
        EXPECT_EQ(roundTrip(list, ok), list);
        EXPECT_TRUE(ok);
    }
}

TEST(NeighbourList, SortedListRoundTripsCompactly)
{
    std::vector<VertexId> list = {10, 11, 12, 13, 20, 21, 84};
    std::vector<std::uint8_t> bytes;
    encodeNeighbourList(list, bytes);
    // First element one byte, then one byte per delta up to 63
    // (zigzag spends one bit on the sign).
    EXPECT_EQ(bytes.size(), list.size());
    std::vector<VertexId> decoded(list.size());
    EXPECT_TRUE(decodeNeighbourList(bytes, decoded));
    EXPECT_EQ(decoded, list);
}

TEST(NeighbourList, NonMonotoneListRoundTrips)
{
    bool ok = false;
    std::vector<VertexId> list = {500, 3, 1000000, 3, 0,
                                  kInvalidVertex - 1, 42};
    EXPECT_EQ(roundTrip(list, ok), list);
    EXPECT_TRUE(ok);
}

TEST(NeighbourList, MaxDegreeHubRoundTrips)
{
    // A star hub's list: every other vertex, in order — the
    // worst-case degree a .gralb can hold per vertex.
    std::vector<VertexId> list(100000);
    for (VertexId i = 0; i < list.size(); ++i)
        list[i] = i * 3 + 1;
    bool ok = false;
    EXPECT_EQ(roundTrip(list, ok), list);
    EXPECT_TRUE(ok);
}

TEST(NeighbourList, TruncatedBufferRejected)
{
    std::vector<VertexId> list = {10, 200, 3000, 40000};
    std::vector<std::uint8_t> bytes;
    encodeNeighbourList(list, bytes);
    std::vector<VertexId> decoded(list.size());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_FALSE(decodeNeighbourList(
            std::span<const std::uint8_t>(bytes.data(), cut),
            decoded))
            << "cut at " << cut;
    }
}

TEST(NeighbourList, LeftoverBytesRejected)
{
    std::vector<VertexId> list = {1, 2, 3};
    std::vector<std::uint8_t> bytes;
    encodeNeighbourList(list, bytes);
    bytes.push_back(0); // one spare varint
    std::vector<VertexId> decoded(list.size());
    EXPECT_FALSE(decodeNeighbourList(bytes, decoded));
}

TEST(NeighbourList, DeltaBelowZeroRejected)
{
    // First element 5, delta -6 → decoded ID -1: invalid.
    std::vector<std::uint8_t> bytes;
    appendVarint(5, bytes);
    appendVarint(zigzagEncode(-6), bytes);
    std::vector<VertexId> decoded(2);
    EXPECT_FALSE(decodeNeighbourList(bytes, decoded));
}

TEST(NeighbourList, IdAtInvalidVertexRejected)
{
    // kInvalidVertex is the sentinel, never a valid neighbour.
    std::vector<std::uint8_t> bytes;
    appendVarint(kInvalidVertex, bytes);
    std::vector<VertexId> decoded(1);
    EXPECT_FALSE(decodeNeighbourList(bytes, decoded));
}

TEST(CompressAdjacency, IndexBracketsEveryList)
{
    Graph graph = generateErdosRenyi(200, 1500, 11);
    CompressedAdjacency compressed = compressAdjacency(graph.out());
    ASSERT_EQ(compressed.byteIndex.size(), graph.numVertices() + 1u);
    EXPECT_EQ(compressed.byteIndex.front(), 0u);
    EXPECT_EQ(compressed.byteIndex.back(), compressed.blob.size());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        std::size_t begin = compressed.byteIndex[v];
        std::size_t end = compressed.byteIndex[v + 1];
        ASSERT_LE(begin, end);
        std::span<const VertexId> expected =
            graph.out().neighbours(v);
        std::vector<VertexId> decoded(expected.size());
        ASSERT_TRUE(decodeNeighbourList(
            std::span<const std::uint8_t>(compressed.blob.data() +
                                              begin,
                                          end - begin),
            decoded));
        EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                               expected.begin(), expected.end()));
    }
}

TEST(CompressAdjacency, BytesPerEdgeDefinition)
{
    Graph graph = makeCycle(64);
    CompressedAdjacency compressed = compressAdjacency(graph.out());
    EXPECT_DOUBLE_EQ(
        compressedBytesPerEdge(compressed, graph.numEdges()),
        static_cast<double>(compressed.blob.size()) /
            static_cast<double>(graph.numEdges()));
    EXPECT_DOUBLE_EQ(compressedBytesPerEdge(compressed, 0), 0.0);
}

TEST(NeighbourScratch, DecodesCompressedView)
{
    Graph graph = generateErdosRenyi(150, 900, 5);
    CompressedAdjacency compressed = compressAdjacency(graph.out());
    AdjacencyView view = AdjacencyView::compressed(
        graph.out().offsets(), compressed.byteIndex, compressed.blob);
    ASSERT_TRUE(view.isCompressed());
    NeighbourScratch scratch;
    scratch.reserveFor(view);
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        std::span<const VertexId> got = scratch.neighbours(view, v);
        std::span<const VertexId> expected =
            graph.out().neighbours(v);
        EXPECT_TRUE(std::equal(got.begin(), got.end(),
                               expected.begin(), expected.end()))
            << "vertex " << v;
    }
}

TEST(NeighbourScratch, ForwardsRawSpanUncompressed)
{
    Graph graph = makePath(8);
    NeighbourScratch scratch; // no reserve needed uncompressed
    AdjacencyView view = graph.out();
    std::span<const VertexId> got = scratch.neighbours(view, 3);
    EXPECT_EQ(got.data(), graph.out().neighbours(3).data());
}

TEST(DecodeGraph, RoundTripsCompressedBothDirections)
{
    Graph graph = generateErdosRenyi(120, 700, 23);
    CompressedAdjacency out_c = compressAdjacency(graph.out());
    CompressedAdjacency in_c = compressAdjacency(graph.in());
    GraphView compressed_view(
        AdjacencyView::compressed(graph.out().offsets(),
                                  out_c.byteIndex, out_c.blob),
        AdjacencyView::compressed(graph.in().offsets(),
                                  in_c.byteIndex, in_c.blob));
    Graph decoded = decodeGraph(compressed_view);
    EXPECT_EQ(decoded, graph);
}

TEST(DecodeGraph, PassesThroughUncompressed)
{
    Graph graph = makeGrid(4, 5);
    Graph decoded = decodeGraph(graph);
    EXPECT_EQ(decoded, graph);
}

} // namespace
} // namespace gral
