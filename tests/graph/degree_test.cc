/**
 * @file
 * Unit tests for degree utilities and the paper's vertex classes.
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"

namespace gral
{
namespace
{

TEST(Degree, DegreesVector)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 2}};
    Graph graph(3, edges);
    auto out = degrees(graph, Direction::Out);
    auto in = degrees(graph, Direction::In);
    EXPECT_EQ(out, (std::vector<EdgeId>{2, 1, 0}));
    EXPECT_EQ(in, (std::vector<EdgeId>{0, 1, 2}));
}

TEST(Degree, HubThresholdIsSqrtV)
{
    Graph graph = makePath(100);
    EXPECT_DOUBLE_EQ(hubThreshold(graph), 10.0);
}

TEST(Degree, StarCenterIsHub)
{
    // Star on 50 vertices: centre has degree 49 > sqrt(50).
    Graph graph = makeStar(50);
    EXPECT_TRUE(isInHub(graph, 0));
    EXPECT_TRUE(isOutHub(graph, 0));
    EXPECT_FALSE(isInHub(graph, 1));
    EXPECT_EQ(inHubs(graph), std::vector<VertexId>{0});
    EXPECT_EQ(outHubs(graph), std::vector<VertexId>{0});
}

TEST(Degree, ClassifyCounts)
{
    Graph graph = makeStar(50);
    DegreeClassCounts counts = classifyDegrees(graph, Direction::Out);
    // Average degree = 98/50 = 1.96: leaves have degree 1 (LDV),
    // centre 49 (HDV and hub).
    EXPECT_EQ(counts.lowDegree, 49u);
    EXPECT_EQ(counts.highDegree, 1u);
    EXPECT_EQ(counts.hubs, 1u);
}

TEST(Degree, Histogram)
{
    Graph graph = makeStar(5); // centre degree 4, leaves degree 1
    auto histogram = degreeHistogram(graph, Direction::Out);
    ASSERT_EQ(histogram.size(), 5u);
    EXPECT_EQ(histogram[1], 4u);
    EXPECT_EQ(histogram[4], 1u);
    EXPECT_EQ(histogram[0], 0u);
}

TEST(Degree, MaxDegree)
{
    Graph graph = makeStar(17);
    EXPECT_EQ(maxDegree(graph, Direction::Out), 16u);
    EXPECT_EQ(maxDegree(graph, Direction::In), 16u);
}

TEST(LogDegreeBin, CanonicalBoundaries)
{
    EXPECT_EQ(logDegreeBin(0), 0u);
    EXPECT_EQ(logDegreeBin(1), 1u);
    EXPECT_EQ(logDegreeBin(2), 2u);
    EXPECT_EQ(logDegreeBin(4), 2u);
    EXPECT_EQ(logDegreeBin(5), 3u);
    EXPECT_EQ(logDegreeBin(9), 3u);
    EXPECT_EQ(logDegreeBin(10), 4u);
    EXPECT_EQ(logDegreeBin(19), 4u);
    EXPECT_EQ(logDegreeBin(20), 5u);
    EXPECT_EQ(logDegreeBin(50), 6u);
    EXPECT_EQ(logDegreeBin(100), 7u);
    EXPECT_EQ(logDegreeBin(1000), 10u);
}

TEST(LogDegreeBin, BinLowInvertsBin)
{
    for (std::size_t bin = 0; bin < 25; ++bin)
        EXPECT_EQ(logDegreeBin(logDegreeBinLow(bin)), bin);
}

/** Property sweep: bins are monotone and contain their lower edge. */
class LogBinProperty : public ::testing::TestWithParam<EdgeId>
{
};

TEST_P(LogBinProperty, MonotoneAndBounded)
{
    EdgeId degree = GetParam();
    std::size_t bin = logDegreeBin(degree);
    EXPECT_LE(logDegreeBinLow(bin), std::max<EdgeId>(degree, 1));
    if (degree > 0)
        EXPECT_LE(logDegreeBin(degree - 1), bin);
    EXPECT_GE(logDegreeBin(degree + 1), bin);
}

INSTANTIATE_TEST_SUITE_P(Degrees, LogBinProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 9, 10, 49,
                                           50, 99, 100, 999, 1000,
                                           123456, 10000000));

} // namespace
} // namespace gral
