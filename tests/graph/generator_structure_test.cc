/**
 * @file
 * Structural tests for the generator features that encode the paper's
 * dataset analysis: social communities, aggregator out-hubs, web
 * link-groups and crawl noise.
 */

#include <gtest/gtest.h>

#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "metrics/aid.h"
#include "reorder/rabbit_order.h"

namespace gral
{
namespace
{

TEST(SocialStructure, AggregatorsCreateOutDegreeTail)
{
    SocialNetworkParams params;
    params.numVertices = 8000;
    params.edgesPerVertex = 8;
    Graph graph = generateSocialNetwork(params);
    // The aggregator accounts are the strongest out-hubs; the paper's
    // Twitter (Fig. 6) shows out-hub coverage well above in-hub
    // coverage.
    EXPECT_GT(maxDegree(graph, Direction::Out),
              maxDegree(graph, Direction::In));
}

TEST(SocialStructure, AggregatorShareControlsTail)
{
    SocialNetworkParams with;
    with.numVertices = 6000;
    with.edgesPerVertex = 8;
    SocialNetworkParams without = with;
    without.aggregatorEdgeShare = 0.0;
    Graph g_with = generateSocialNetwork(with);
    Graph g_without = generateSocialNetwork(without);
    EXPECT_GT(g_with.numEdges(), g_without.numEdges());
    EXPECT_GT(maxDegree(g_with, Direction::Out),
              maxDegree(g_without, Direction::Out));
}

TEST(SocialStructure, CommunityBiasRaisesIntraCommunityEdges)
{
    // Community membership is not observable after the ID shuffle,
    // but its effect is: vertices in a community share neighbours, so
    // the triangle proxy below (fraction of edges whose endpoints
    // have a common out-neighbour) must rise with the bias. With zero
    // bias the generator degenerates to plain preferential
    // attachment, which is nearly triangle-free at this size.
    auto shared_neighbour_rate = [](const Graph &graph) {
        // Fraction of edges (u, v) where u and v share at least one
        // common out-neighbour (triangle proxy).
        std::uint64_t with_common = 0;
        std::uint64_t sampled = 0;
        for (VertexId v = 0; v < graph.numVertices();
             v += 97) { // sample
            for (VertexId u : graph.outNeighbours(v)) {
                ++sampled;
                auto a = graph.outNeighbours(v);
                auto b = graph.outNeighbours(u);
                std::size_t i = 0;
                std::size_t j = 0;
                bool common = false;
                while (i < a.size() && j < b.size()) {
                    if (a[i] == b[j]) {
                        common = true;
                        break;
                    }
                    if (a[i] < b[j])
                        ++i;
                    else
                        ++j;
                }
                with_common += common ? 1 : 0;
            }
        }
        return sampled == 0 ? 0.0
                            : static_cast<double>(with_common) /
                                  static_cast<double>(sampled);
    };

    SocialNetworkParams biased;
    biased.numVertices = 6000;
    biased.edgesPerVertex = 8;
    biased.communityBias = 0.6;
    SocialNetworkParams unbiased = biased;
    unbiased.communityBias = 0.0;

    EXPECT_GT(shared_neighbour_rate(generateSocialNetwork(biased)),
              shared_neighbour_rate(generateSocialNetwork(unbiased)) +
                  0.05);
}

TEST(WebStructure, NoiseDegradesInitialLocality)
{
    WebGraphParams clean;
    clean.numVertices = 8000;
    clean.idNoise = 0.0;
    WebGraphParams noisy = clean;
    noisy.idNoise = 0.3;
    Graph g_clean = generateWebGraph(clean);
    Graph g_noisy = generateWebGraph(noisy);
    // Crawl noise scatters pages away from their host blocks: the
    // gap profile (and AID) must get worse.
    EXPECT_GT(averageGapProfile(g_noisy),
              1.2 * averageGapProfile(g_clean));
}

TEST(WebStructure, LinkGroupsGiveRabbitOrderMoreToRecover)
{
    // Link groups are scattered *within* the host block, so they do
    // not improve the initial AID — they are the latent structure a
    // clustering RA recovers. Rabbit-Order must therefore reduce AID
    // more on the grouped graph than on the flat one.
    WebGraphParams grouped;
    grouped.numVertices = 8000;
    grouped.idNoise = 0.0;
    grouped.groupProb = 0.9;
    WebGraphParams flat = grouped;
    flat.groupProb = 0.0;

    auto ro_ratio = [](const Graph &graph) {
        RabbitOrder ra;
        Graph reordered = applyPermutation(graph, ra.reorder(graph));
        double before = meanAid(graph, Direction::In);
        double after = meanAid(reordered, Direction::In);
        return before == 0.0 ? 1.0 : after / before;
    };
    EXPECT_LT(ro_ratio(generateWebGraph(grouped)),
              ro_ratio(generateWebGraph(flat)));
}

TEST(WebStructure, NoiseIsDeterministic)
{
    WebGraphParams params;
    params.numVertices = 3000;
    params.idNoise = 0.25;
    EXPECT_EQ(generateWebGraph(params), generateWebGraph(params));
}

TEST(WebStructure, HostIndexPagesAreLocalInHubs)
{
    WebGraphParams params;
    params.numVertices = 6000;
    params.idNoise = 0.0; // keep index pages at host block starts
    Graph graph = generateWebGraph(params);
    // Index pages are *host-local* in-hubs: their in-degree is
    // bounded by the host size (each host page links them once after
    // dedup), so with ~93 hosts there must be a dense band of
    // vertices with in-degree near the host size...
    VertexId num_hosts = params.numVertices / params.pagesPerHost;
    EdgeId local_hub_floor =
        static_cast<EdgeId>(0.7 * params.pagesPerHost);
    VertexId local_hubs = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        if (graph.inDegree(v) >= local_hub_floor)
            ++local_hubs;
    EXPECT_GT(local_hubs, num_hosts / 2);
    // ...while the *global* in-hubs come from the copying process and
    // tower above sqrt(|V|).
    EXPECT_GT(static_cast<double>(maxDegree(graph, Direction::In)),
              5.0 * hubThreshold(graph));
}

} // namespace
} // namespace gral
