/**
 * @file
 * Unit tests for the Graph class (paired CSR/CSC).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/graph.h"

namespace gral
{
namespace
{

Graph
triangle()
{
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
    return Graph(3, edges);
}

TEST(Graph, EmptyGraph)
{
    Graph graph;
    EXPECT_EQ(graph.numVertices(), 0u);
    EXPECT_EQ(graph.numEdges(), 0u);
    EXPECT_EQ(graph.averageDegree(), 0.0);
}

TEST(Graph, DirectedTriangle)
{
    Graph graph = triangle();
    EXPECT_EQ(graph.numVertices(), 3u);
    EXPECT_EQ(graph.numEdges(), 3u);
    for (VertexId v = 0; v < 3; ++v) {
        EXPECT_EQ(graph.outDegree(v), 1u);
        EXPECT_EQ(graph.inDegree(v), 1u);
    }
    EXPECT_DOUBLE_EQ(graph.averageDegree(), 1.0);
}

TEST(Graph, CsrCscConsistency)
{
    Graph graph = triangle();
    // (u, v) in CSR iff (v has u as in-neighbour) in CSC.
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (VertexId u : graph.outNeighbours(v))
            EXPECT_TRUE(graph.in().hasNeighbour(u, v));
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        for (VertexId u : graph.inNeighbours(v))
            EXPECT_TRUE(graph.out().hasNeighbour(u, v));
}

TEST(Graph, EdgeListRoundTrip)
{
    std::vector<Edge> edges = {{0, 1}, {0, 2}, {3, 1}, {2, 2}};
    std::sort(edges.begin(), edges.end());
    Graph graph(4, edges);
    std::vector<Edge> back = graph.edgeList();
    std::sort(back.begin(), back.end());
    EXPECT_EQ(back, edges);
}

TEST(Graph, MismatchedAdjacenciesRejected)
{
    Adjacency out({0, 1}, {0});
    Adjacency in({0, 0, 0}, {});
    EXPECT_THROW(Graph(std::move(out), std::move(in)),
                 std::invalid_argument);
}

TEST(Graph, FootprintCountsBothDirections)
{
    Graph graph = triangle();
    // 2 x ((|V|+1) x 8 + |E| x 4).
    EXPECT_EQ(graph.footprintBytes(), 2 * (4 * 8 + 3 * 4));
}

TEST(Graph, GeneratedGraphConsistency)
{
    Graph graph = generateErdosRenyi(200, 1000, 7);
    EXPECT_EQ(graph.out().numEdges(), graph.in().numEdges());
    EdgeId out_sum = 0;
    EdgeId in_sum = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        out_sum += graph.outDegree(v);
        in_sum += graph.inDegree(v);
    }
    EXPECT_EQ(out_sum, graph.numEdges());
    EXPECT_EQ(in_sum, graph.numEdges());
}

} // namespace
} // namespace gral
