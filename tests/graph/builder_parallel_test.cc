/**
 * @file
 * Tests for the parallel graph builder: bit-identical output vs the
 * sequential GraphBuilder across generators, cleanup options, and
 * thread counts, with validateCsr on every result.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/builder_parallel.h"
#include "graph/generators.h"
#include "graph/validate.h"

namespace gral
{
namespace
{

/** Edge lists the cleanup phases actually have to work on: the
 *  generator's list plus injected self-loops and duplicates. */
std::vector<Edge>
dirtyEdges(const Graph &graph)
{
    std::vector<Edge> edges = graph.edgeList();
    std::size_t original = edges.size();
    for (std::size_t e = 0; e < original; e += 7)
        edges.push_back(edges[e]); // duplicates
    for (VertexId v = 0; v < graph.numVertices(); v += 13)
        edges.push_back({v, v}); // self-loops
    return edges;
}

struct NamedEdgeList
{
    std::string name;
    VertexId numVertices;
    std::vector<Edge> edges;
};

std::vector<NamedEdgeList>
generatorCases()
{
    std::vector<NamedEdgeList> cases;
    {
        RMatParams params;
        params.scale = 10;
        Graph graph = generateRMat(params);
        cases.push_back(
            {"rmat", graph.numVertices(), dirtyEdges(graph)});
    }
    {
        Graph graph = generateErdosRenyi(2000, 16000, 42);
        cases.push_back(
            {"uniform", graph.numVertices(), dirtyEdges(graph)});
    }
    {
        // Table-I stand-ins: heavy-tailed social / host-local web.
        SocialNetworkParams social;
        social.numVertices = 1500;
        Graph graph = generateSocialNetwork(social);
        cases.push_back(
            {"social", graph.numVertices(), dirtyEdges(graph)});
    }
    {
        WebGraphParams web;
        web.numVertices = 1500;
        Graph graph = generateWebGraph(web);
        cases.push_back(
            {"web", graph.numVertices(), dirtyEdges(graph)});
    }
    return cases;
}

std::vector<BuildOptions>
optionCombos()
{
    std::vector<BuildOptions> combos;
    for (bool loops : {true, false})
        for (bool dups : {true, false})
            for (bool zero : {true, false}) {
                BuildOptions options;
                options.removeSelfLoops = loops;
                options.removeDuplicates = dups;
                options.removeZeroDegree = zero;
                combos.push_back(options);
            }
    return combos;
}

TEST(BuilderParallel, BitIdenticalAcrossGeneratorsAndThreads)
{
    for (const NamedEdgeList &c : generatorCases()) {
        GraphBuilder sequential;
        sequential.addEdges(c.edges);
        Graph expected = sequential.finalize();
        for (unsigned threads : {1u, 2u, 3u, 4u}) {
            ParallelBuildOptions options;
            options.numThreads = threads;
            Graph got = buildGraphParallel(0, c.edges, options);
            validateCsr(got.out(), "parallel out " + c.name);
            validateCsr(got.in(), "parallel in " + c.name);
            ASSERT_EQ(got, expected)
                << c.name << " with " << threads << " threads";
        }
    }
}

TEST(BuilderParallel, BitIdenticalForEveryCleanupCombo)
{
    Graph base = generateErdosRenyi(600, 5000, 7);
    std::vector<Edge> edges = dirtyEdges(base);
    for (const BuildOptions &cleanup : optionCombos()) {
        GraphBuilder sequential;
        sequential.addEdges(edges);
        Graph expected = sequential.finalize(cleanup);
        ParallelBuildOptions options;
        options.cleanup = cleanup;
        options.numThreads = 3;
        Graph got = buildGraphParallel(0, edges, options);
        validateCsr(got.out(), "parallel out");
        validateCsr(got.in(), "parallel in");
        ASSERT_EQ(got, expected)
            << "loops=" << cleanup.removeSelfLoops
            << " dups=" << cleanup.removeDuplicates
            << " zero=" << cleanup.removeZeroDegree;
    }
}

TEST(BuilderParallel, OldToNewMatchesSequential)
{
    // Sparse IDs with holes: vertices 0, 5, 10, ... used only.
    std::vector<Edge> edges;
    for (VertexId v = 0; v < 500; v += 5)
        edges.push_back({v, (v + 35) % 500});
    GraphBuilder sequential;
    sequential.addEdges(edges);
    std::vector<VertexId> expected_map;
    Graph expected = sequential.finalize({}, &expected_map);

    std::vector<VertexId> got_map;
    ParallelBuildOptions options;
    options.numThreads = 4;
    Graph got = buildGraphParallel(0, edges, options, &got_map);
    EXPECT_EQ(got, expected);
    EXPECT_EQ(got_map, expected_map);
}

TEST(BuilderParallel, IdentityMapWithoutCompaction)
{
    std::vector<Edge> edges = {{0, 2}, {2, 4}};
    ParallelBuildOptions options;
    options.cleanup.removeZeroDegree = false;
    options.numThreads = 2;
    std::vector<VertexId> map;
    Graph got = buildGraphParallel(0, edges, options, &map);
    EXPECT_EQ(got.numVertices(), 5u);
    ASSERT_EQ(map.size(), 5u);
    for (VertexId v = 0; v < map.size(); ++v)
        EXPECT_EQ(map[v], v);
}

TEST(BuilderParallel, GrowsVertexCountToLargestEndpoint)
{
    std::vector<Edge> edges = {{0, 1}, {1, 999}};
    ParallelBuildOptions options;
    options.cleanup.removeZeroDegree = false;
    Graph got = buildGraphParallel(10, edges, options);
    EXPECT_EQ(got.numVertices(), 1000u);
}

TEST(BuilderParallel, EmptyEdgeListYieldsEmptyGraph)
{
    std::vector<Edge> no_edges;
    Graph got = buildGraphParallel(0, no_edges);
    EXPECT_EQ(got.numVertices(), 0u);
    EXPECT_EQ(got.numEdges(), 0u);
    // Vertex floor respected when compaction is off.
    ParallelBuildOptions keep;
    keep.cleanup.removeZeroDegree = false;
    Graph floored = buildGraphParallel(7, no_edges, keep);
    EXPECT_EQ(floored.numVertices(), 7u);
}

TEST(BuilderParallel, DefaultThreadCountWorks)
{
    Graph base = generateErdosRenyi(300, 2000, 3);
    std::vector<Edge> edges = dirtyEdges(base);
    GraphBuilder sequential;
    sequential.addEdges(edges);
    Graph expected = sequential.finalize();
    Graph got = buildGraphParallel(0, edges); // numThreads = 0
    EXPECT_EQ(got, expected);
}

} // namespace
} // namespace gral
