/**
 * @file
 * Tests for the storage-agnostic AdjacencyView/GraphView layer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/view.h"

namespace gral
{
namespace
{

TEST(AdjacencyView, DefaultIsEmpty)
{
    AdjacencyView view;
    EXPECT_EQ(view.numVertices(), 0u);
    EXPECT_EQ(view.numEdges(), 0u);
    EXPECT_FALSE(view.isCompressed());
}

TEST(AdjacencyView, MirrorsAdjacency)
{
    Graph graph = makeGrid(3, 4);
    AdjacencyView view = graph.out(); // implicit conversion
    ASSERT_EQ(view.numVertices(), graph.numVertices());
    ASSERT_EQ(view.numEdges(), graph.numEdges());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        EXPECT_EQ(view.degree(v), graph.outDegree(v));
        EXPECT_EQ(view.beginEdge(v), graph.out().offsets()[v]);
        EXPECT_EQ(view.endEdge(v), graph.out().offsets()[v + 1]);
        // Zero-copy: the span aliases the Adjacency's storage.
        EXPECT_EQ(view.neighbours(v).data(),
                  graph.out().neighbours(v).data());
    }
}

TEST(AdjacencyView, HasNeighbourBinarySearch)
{
    Graph graph = makeCycle(10);
    AdjacencyView view = graph.out();
    for (VertexId v = 0; v < 10; ++v) {
        EXPECT_TRUE(view.hasNeighbour(v, (v + 1) % 10));
        EXPECT_FALSE(view.hasNeighbour(v, (v + 5) % 10));
    }
}

TEST(AdjacencyView, RawSpanConstructor)
{
    std::vector<EdgeId> offsets = {0, 2, 3, 3};
    std::vector<VertexId> edges = {1, 2, 0};
    AdjacencyView view{std::span<const EdgeId>(offsets),
                       std::span<const VertexId>(edges)};
    EXPECT_EQ(view.numVertices(), 3u);
    EXPECT_EQ(view.numEdges(), 3u);
    EXPECT_EQ(view.degree(0), 2u);
    EXPECT_EQ(view.degree(2), 0u);
}

TEST(GraphView, MirrorsGraph)
{
    Graph graph = generateErdosRenyi(100, 600, 2);
    GraphView view = graph;
    EXPECT_EQ(view.numVertices(), graph.numVertices());
    EXPECT_EQ(view.numEdges(), graph.numEdges());
    EXPECT_DOUBLE_EQ(view.averageDegree(), graph.averageDegree());
    EXPECT_EQ(view.footprintBytes(), graph.footprintBytes());
    EXPECT_EQ(view.edgeList(), graph.edgeList());
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        EXPECT_EQ(view.outDegree(v), graph.outDegree(v));
        EXPECT_EQ(view.inDegree(v), graph.inDegree(v));
    }
}

TEST(GraphView, KeyIdentifiesStorageNotViewObject)
{
    Graph a = makeCycle(8);
    Graph b = makeCycle(8);
    GraphView view_a1 = a;
    GraphView view_a2 = a; // distinct view object, same storage
    GraphView view_b = b;  // equal topology, different storage
    EXPECT_EQ(view_a1.key(), view_a2.key());
    EXPECT_FALSE(view_a1.key() == view_b.key());
}

TEST(GraphView, KeyChangesWhenStorageMoves)
{
    Graph a = makeCycle(8);
    GraphViewKey before = GraphView(a).key();
    Graph b = std::move(a);
    // The heap buffers moved wholesale, so the key follows them.
    EXPECT_EQ(GraphView(b).key(), before);
}

TEST(GraphView, MaterializeDeepCopies)
{
    Graph graph = generateErdosRenyi(80, 400, 31);
    GraphView view = graph;
    Graph copy = materializeGraph(view);
    EXPECT_EQ(copy, graph);
    // Deep copy: distinct storage.
    EXPECT_FALSE(GraphView(copy).key() == view.key());
}

TEST(GraphView, EmptyViewIsSafe)
{
    GraphView view;
    EXPECT_EQ(view.numVertices(), 0u);
    EXPECT_EQ(view.numEdges(), 0u);
    EXPECT_DOUBLE_EQ(view.averageDegree(), 0.0);
    EXPECT_FALSE(view.isCompressed());
    EXPECT_TRUE(view.edgeList().empty());
}

} // namespace
} // namespace gral
