/**
 * @file
 * Unit tests for the disjoint-set structure.
 */

#include <gtest/gtest.h>

#include "graph/union_find.h"

namespace gral
{
namespace
{

TEST(UnionFind, StartsAsSingletons)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.numComponents(), 5u);
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_EQ(uf.find(v), v);
        EXPECT_EQ(uf.componentSize(v), 1u);
    }
}

TEST(UnionFind, UniteMergesOnce)
{
    UnionFind uf(4);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0)); // already merged
    EXPECT_EQ(uf.numComponents(), 3u);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(0, 2));
    EXPECT_EQ(uf.componentSize(0), 2u);
}

TEST(UnionFind, TransitiveConnectivity)
{
    UnionFind uf(6);
    uf.unite(0, 1);
    uf.unite(2, 3);
    uf.unite(1, 2);
    EXPECT_TRUE(uf.connected(0, 3));
    EXPECT_EQ(uf.componentSize(3), 4u);
    EXPECT_EQ(uf.numComponents(), 3u); // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, ChainCollapsesToOne)
{
    const VertexId n = 1000;
    UnionFind uf(n);
    for (VertexId v = 1; v < n; ++v)
        uf.unite(v - 1, v);
    EXPECT_EQ(uf.numComponents(), 1u);
    EXPECT_EQ(uf.componentSize(0), n);
    EXPECT_EQ(uf.find(0), uf.find(n - 1));
}

TEST(UnionFind, SizeAccessor)
{
    UnionFind uf(17);
    EXPECT_EQ(uf.size(), 17u);
}

} // namespace
} // namespace gral
