/**
 * @file
 * Quickstart: generate a graph, reorder it, and measure what the
 * reordering did to locality.
 *
 * Walks the core API end to end:
 *   1. build a graph (synthetic here; readEdgeListTextFile works the
 *      same way for real datasets),
 *   2. run a reordering algorithm to get a relabeling array,
 *   3. rebuild the graph under the new IDs,
 *   4. compare spatial locality (N2N AID) and simulated cache misses
 *      before and after.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "graph/degree.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "metrics/aid.h"
#include "metrics/miss_rate.h"
#include "reorder/registry.h"
#include "spmv/spmv.h"
#include "spmv/trace_gen.h"

using namespace gral;

namespace
{

/** Simulated data-miss rate of a pull SpMV over @p graph. */
double
missRate(const Graph &graph)
{
    // Streamed simulation: the instrumented traversal feeds the cache
    // model directly; the access trace is never held in memory.
    TraceOptions trace_options;
    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions sim;
    sim.cache.sizeBytes = 128 * 1024; // scaled-down shared L3
    sim.cache.associativity = 8;
    return simulateMissProfile(makePullProducers(graph, trace_options),
                               reuse, sim)
        .dataMissRate();
}

} // namespace

int
main()
{
    // 1. A small social-network-like graph. For a file on disk:
    //    auto edges = readEdgeListTextFile("graph.txt");
    //    Graph graph = buildGraph(0, edges);
    SocialNetworkParams params;
    params.numVertices = 20'000;
    params.edgesPerVertex = 10;
    Graph graph = generateSocialNetwork(params);
    std::cout << "graph: |V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges()
              << " avg degree=" << graph.averageDegree() << "\n";

    // 2. Reorder. Any of: Bl, Random, DegreeSort, HubSort,
    //    HubCluster, SB, SB++, GO, RO.
    ReordererPtr reorderer = makeReorderer("RO");
    Permutation relabeling = reorderer->reorder(graph);
    std::cout << reorderer->name() << " preprocessing: "
              << reorderer->stats().preprocessSeconds << " s\n";

    // 3. Rebuild CSR/CSC under the new vertex IDs.
    Graph reordered = applyPermutation(graph, relabeling);

    // 4. Did locality improve?
    std::cout << "mean in-AID:   " << meanAid(graph) << " -> "
              << meanAid(reordered) << "\n";
    std::cout << "sim miss rate: " << 100.0 * missRate(graph)
              << "% -> " << 100.0 * missRate(reordered) << "%\n";

    // The traversal the metrics describe:
    std::vector<double> ranks = spmvIterations(reordered, 5);
    std::cout << "5 SpMV iterations done; rank[0]=" << ranks[0]
              << "\n";
    return 0;
}
