/**
 * @file
 * Plugging a user-defined reordering algorithm into the toolkit.
 *
 * Implements "BfsOrder" — breadth-first renumbering from the
 * highest-degree vertex, a classic locality baseline the paper's
 * related work discusses — against the Reorderer interface, then
 * evaluates it with the same metrics pipeline the built-in RAs use.
 *
 * Build & run:  ./build/examples/custom_reorderer
 */

#include <iostream>
#include <queue>

#include "analysis/report.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/aid.h"
#include "metrics/miss_rate.h"
#include "reorder/order_util.h"
#include "reorder/registry.h"
#include "obs/timer.h"
#include "spmv/trace_gen.h"

using namespace gral;

namespace
{

/** BFS renumbering from the max-degree vertex; unreached components
 *  are seeded from their own max-degree vertex. */
class BfsOrder : public Reorderer
{
  public:
    std::string name() const override { return "BfsOrder"; }

    Permutation
    reorder(const GraphView &graph) override
    {
        stats_ = {};
        ScopedTimer timer(stats_.preprocessSeconds);
        const VertexId n = graph.numVertices();

        // Seeds in descending undirected-degree order.
        std::vector<EdgeId> degree = undirectedDegrees(graph);
        std::vector<VertexId> seeds(n);
        for (VertexId v = 0; v < n; ++v)
            seeds[v] = v;
        std::stable_sort(seeds.begin(), seeds.end(),
                         [&](VertexId a, VertexId b) {
                             return degree[a] > degree[b];
                         });

        std::vector<VertexId> ordering;
        ordering.reserve(n);
        std::vector<char> visited(n, 0);
        std::queue<VertexId> frontier;
        for (VertexId seed : seeds) {
            if (visited[seed])
                continue;
            visited[seed] = 1;
            frontier.push(seed);
            while (!frontier.empty()) {
                VertexId v = frontier.front();
                frontier.pop();
                ordering.push_back(v);
                auto visit = [&](VertexId u) {
                    if (!visited[u]) {
                        visited[u] = 1;
                        frontier.push(u);
                    }
                };
                for (VertexId u : graph.outNeighbours(v))
                    visit(u);
                for (VertexId u : graph.inNeighbours(v))
                    visit(u);
            }
        }
        stats_.peakFootprintBytes =
            n * (sizeof(EdgeId) + 2 * sizeof(VertexId) + 1);
        return orderingToPermutation(ordering);
    }
};

/** Evaluate one reorderer with the shared metrics pipeline. */
void
evaluate(TextTable &table, const Graph &base, Reorderer &ra)
{
    Permutation p = ra.reorder(base);
    Graph graph = applyPermutation(base, p);

    auto reuse = degrees(graph, Direction::Out);
    SimulationOptions sim;
    sim.cache.sizeBytes = 128 * 1024;
    sim.cache.associativity = 8;
    sim.simulateTlb = false;
    auto profile =
        simulateMissProfile(makePullProducers(graph, {}), reuse, sim);

    table.addRow(
        {ra.name(),
         formatDouble(ra.stats().preprocessSeconds, 3),
         formatDouble(meanAid(graph), 0),
         formatDouble(100.0 * profile.dataMissRate(), 1)});
}

} // namespace

int
main()
{
    WebGraphParams params;
    params.numVertices = 30'000;
    params.meanOutDegree = 16.0;
    Graph base = generateWebGraph(params);
    std::cout << "web graph: |V|=" << base.numVertices()
              << " |E|=" << base.numEdges() << "\n\n";

    TextTable table(
        {"RA", "prep (s)", "mean in-AID", "data miss rate %"});

    BfsOrder custom;
    evaluate(table, base, custom);
    for (const char *name : {"Bl", "Random", "SB", "GO", "RO"}) {
        ReordererPtr ra = makeReorderer(name);
        evaluate(table, base, *ra);
    }
    table.print(std::cout);
    std::cout << "\nBfsOrder is a ~30-line Reorderer subclass; every "
                 "metric and bench in the toolkit accepts it.\n";
    return 0;
}
