/**
 * @file
 * Structural analysis of a social network vs a web graph — the
 * paper's Section VII workflow as a library user would run it.
 *
 * For each graph the example prints asymmetricity, degree range
 * decomposition, and hub edge coverage, then applies the paper's
 * decision rules: which traversal direction (push vs pull) the
 * structure favours, and which RA family is likely to help.
 *
 * Build & run:  ./build/examples/social_vs_web
 */

#include <iostream>

#include "analysis/report.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/asymmetricity.h"
#include "metrics/degree_range.h"
#include "metrics/hub_coverage.h"

using namespace gral;

namespace
{

void
analyze(const std::string &name, const Graph &graph)
{
    std::cout << "=== " << name << " ===\n";
    std::cout << "|V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges() << " in-hubs "
              << inHubs(graph).size() << ", out-hubs "
              << outHubs(graph).size() << "\n";

    // Asymmetricity of in-hubs: symmetric hubs mean the hub core is
    // mutually connected (social-network signature).
    double hub_asym = 0.0;
    auto hubs = inHubs(graph);
    for (VertexId v : hubs)
        hub_asym += vertexAsymmetricity(graph, v);
    if (!hubs.empty())
        hub_asym /= static_cast<double>(hubs.size());
    std::cout << "mean asymmetricity: graph "
              << formatDouble(100.0 * meanAsymmetricity(graph), 1)
              << "%, in-hubs " << formatDouble(100.0 * hub_asym, 1)
              << "%\n";

    // Who feeds the hubs? (Figure 5 in one number.)
    auto decomposition = degreeRangeDecomposition(graph);
    std::size_t top = decomposition.percent.size();
    while (top > 0 && decomposition.edgesPerClass[top - 1] == 0)
        --top;
    double hub_fed_by_hubs = 0.0;
    if (top > 0)
        for (std::size_t src = 2;
             src < decomposition.percent[top - 1].size(); ++src)
            hub_fed_by_hubs += decomposition.percent[top - 1][src];
    std::cout << "top in-degree class receives "
              << formatDouble(hub_fed_by_hubs, 1)
              << "% of its edges from sources with out-degree > 100\n";

    // Push vs pull (Figure 6 at H = 2% of |V|).
    auto coverage = hubCoverage(graph, {graph.numVertices() / 50});
    std::cout << "top-2% hubs cover: in "
              << formatDouble(coverage[0].inHubEdgePercent, 1)
              << "% / out "
              << formatDouble(coverage[0].outHubEdgePercent, 1)
              << "% of edges\n";

    // The paper's decision rules (Sections VII-A/B, VIII).
    bool push = coverage[0].inHubEdgePercent >
                1.5 * coverage[0].outHubEdgePercent;
    bool pull = coverage[0].outHubEdgePercent >
                1.5 * coverage[0].inHubEdgePercent;
    std::cout << "-> traversal direction: "
              << (push   ? "push (CSR) — in-hubs dominate"
                  : pull ? "pull (CSC) — out-hubs dominate"
                         : "either — hub power balanced")
              << "\n";
    std::cout << "-> RA recommendation: "
              << (hub_fed_by_hubs > 50.0
                      ? "GOrder-style temporal reuse (tight HDV core)"
                      : "Rabbit-Order-style clustering (LDV "
                        "neighbourhoods)")
              << "\n\n";
}

} // namespace

int
main()
{
    SocialNetworkParams sn;
    sn.numVertices = 30'000;
    sn.edgesPerVertex = 12;
    analyze("social network (Twitter-like)",
            generateSocialNetwork(sn));

    WebGraphParams wg;
    wg.numVertices = 30'000;
    wg.meanOutDegree = 20.0;
    analyze("web graph (domain-crawl-like)", generateWebGraph(wg));
    return 0;
}
