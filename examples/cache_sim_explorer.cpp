/**
 * @file
 * Cache-simulation explorer: replay one SpMV trace through a sweep of
 * cache geometries and replacement policies.
 *
 * Shows the trace-driven simulator as a standalone tool: generate the
 * instrumented traversal once, then ask "what if the L3 were twice as
 * big?" or "what does LRU do to this workload?" without touching the
 * traversal again. Also reports the effective cache size (how much
 * capacity actually holds randomly-accessed vertex data).
 *
 * Build & run:  ./build/examples/cache_sim_explorer
 */

#include <iostream>

#include "analysis/report.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/ecs.h"
#include "metrics/miss_rate.h"
#include "metrics/reuse_distance.h"
#include "spmv/trace_gen.h"

using namespace gral;

int
main()
{
    WebGraphParams params;
    params.numVertices = 40'000;
    params.meanOutDegree = 18.0;
    Graph graph = generateWebGraph(params);
    std::cout << "graph: |V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges() << "\n\n";

    // The instrumented pull SpMV is a set of resumable producers (8
    // simulated threads): each "what if" below regenerates the
    // identical access stream and pipes it straight into the cache
    // model, so no trace is ever materialized.
    TraceOptions trace_options;
    auto reuse = degrees(graph, Direction::Out);

    // Sweep cache capacity at a fixed DRRIP policy.
    TextTable capacity_table(
        {"L3 size", "miss rate %", "data miss rate %", "ECS %"});
    MissProfileResult last_profile;
    for (std::uint64_t kb : {32, 64, 128, 256, 512}) {
        SimulationOptions sim;
        sim.cache.sizeBytes = kb * 1024;
        sim.cache.associativity = 8;
        sim.simulateTlb = false;
        auto profile = simulateMissProfile(
            makePullProducers(graph, trace_options), reuse, sim);

        EcsOptions ecs_options;
        ecs_options.cache = sim.cache;
        ecs_options.scanEvery = 1 << 18;
        auto ecs = effectiveCacheSize(
            makePullProducers(graph, trace_options),
            trace_options.map, ecs_options);

        capacity_table.addRow(
            {std::to_string(kb) + " KB",
             formatDouble(100.0 * profile.cache.missRate(), 1),
             formatDouble(100.0 * profile.dataMissRate(), 1),
             formatDouble(ecs.avgEcsPercent, 1)});
        last_profile = profile;
    }
    std::cout << "trace: " << last_profile.totalAccesses
              << " memory accesses per replay, peak resident "
              << formatBytes(last_profile.peakResidentBytes())
              << "\n\n";
    capacity_table.print(std::cout);
    std::cout << "\n";

    // Sweep replacement policy at a fixed capacity.
    TextTable policy_table({"policy", "miss rate %"});
    for (ReplacementPolicy policy :
         {ReplacementPolicy::LRU, ReplacementPolicy::SRRIP,
          ReplacementPolicy::BRRIP, ReplacementPolicy::DRRIP}) {
        SimulationOptions sim;
        sim.cache.sizeBytes = 128 * 1024;
        sim.cache.associativity = 8;
        sim.cache.policy = policy;
        sim.simulateTlb = false;
        auto profile = simulateMissProfile(
            makePullProducers(graph, trace_options), reuse, sim);
        policy_table.addRow(
            {toString(policy),
             formatDouble(100.0 * profile.cache.missRate(), 1)});
    }
    policy_table.print(std::cout);
    std::cout << "\n";

    // Reuse-distance view of the random accesses: the
    // policy-independent locality profile. The analyzer wants each
    // thread's accesses in program order (not interleaved), so drain
    // the producers one at a time through a chunk buffer.
    ReuseDistanceAnalyzer analyzer(64);
    for (auto &producer : makePullProducers(graph, trace_options)) {
        MemoryAccess buffer[1024];
        std::size_t filled;
        while ((filled = producer->fill(buffer)) > 0)
            for (std::size_t i = 0; i < filled; ++i)
                if (buffer[i].region == AccessRegion::DataOld)
                    analyzer.access(buffer[i].addr);
    }
    std::cout << "vertex-data reuse distances (fully-assoc LRU "
                 "oracle):\n";
    TextTable reuse_table({"capacity (lines)", "hit rate %"});
    for (std::uint64_t lines : {256, 1024, 4096, 16384}) {
        reuse_table.addRow(
            {formatCount(lines),
             formatDouble(100.0 * analyzer.hitRateAtCapacity(lines),
                          1)});
    }
    reuse_table.print(std::cout);
    return 0;
}
