/**
 * @file
 * Graph analytics on top of the SpMV engine — and what reordering
 * buys them.
 *
 * Runs PageRank, HITS, BFS, connected components, and SSSP on a
 * social network (the analytics the paper lists as SpMV-backed in
 * Section II-B), then repeats PageRank after GOrder reordering to
 * show the end-to-end effect on a real analytic, including whether
 * the preprocessing amortizes.
 *
 * Build & run:  ./build/examples/analytics
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "algorithms/hits.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "analysis/report.h"
#include "graph/generators.h"
#include "graph/permutation.h"
#include "reorder/registry.h"

using namespace gral;

namespace
{

double
seconds(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    SocialNetworkParams params;
    params.numVertices = 60'000;
    params.edgesPerVertex = 16;
    Graph graph = generateSocialNetwork(params);
    std::cout << "social network: |V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges() << "\n\n";

    // --- the analytics suite ---
    auto t0 = std::chrono::steady_clock::now();
    PageRankResult pr = pageRank(graph);
    double pr_s = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    HitsResult ht = hits(graph);
    double hits_s = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    BfsResult bf = bfs(graph, 0);
    double bfs_s = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    LabelPropagationResult cc = labelPropagation(graph);
    double cc_s = seconds(t0);

    t0 = std::chrono::steady_clock::now();
    SsspResult sp = sssp(graph, 0);
    double sssp_s = seconds(t0);

    TextTable table({"Analytic", "time (s)", "result summary"});
    table.addRow({"PageRank", formatDouble(pr_s, 3),
                  std::to_string(pr.iterations) + " iters, top score " +
                      formatDouble(*std::max_element(
                                       pr.scores.begin(),
                                       pr.scores.end()) *
                                       1e3,
                                   3) +
                      "e-3"});
    table.addRow({"HITS", formatDouble(hits_s, 3),
                  std::to_string(ht.iterations) + " iters"});
    table.addRow(
        {"BFS", formatDouble(bfs_s, 3),
         formatCount(bf.reached) + " reached, " +
             std::to_string(bf.denseRounds) + " dense rounds"});
    table.addRow({"CC (label prop)", formatDouble(cc_s, 3),
                  formatCount(cc.numComponents) + " components in " +
                      std::to_string(cc.iterations) + " sweeps"});
    table.addRow({"SSSP", formatDouble(sssp_s, 3),
                  std::to_string(sp.rounds) + " rounds, " +
                      formatCount(sp.relaxations) + " relaxations"});
    table.print(std::cout);

    // --- does reordering pay off for PageRank? ---
    std::cout << "\nReordering with GOrder (the paper's pick for "
                 "social networks)...\n";
    ReordererPtr go = makeReorderer("GO");
    Permutation p = go->reorder(graph);
    Graph reordered = applyPermutation(graph, p);

    t0 = std::chrono::steady_clock::now();
    PageRankResult pr2 = pageRank(reordered);
    double pr2_s = seconds(t0);

    std::cout << "PageRank: " << formatDouble(pr_s, 3) << " s -> "
              << formatDouble(pr2_s, 3) << " s after GOrder ("
              << formatDouble(go->stats().preprocessSeconds, 2)
              << " s preprocessing)\n";
    double saved = pr_s - pr2_s;
    if (saved > 0.0) {
        std::cout << "preprocessing amortizes after ~"
                  << formatDouble(
                         go->stats().preprocessSeconds / saved, 1)
                  << " PageRank runs\n";
    } else {
        std::cout << "no speedup at this scale - the paper's Table "
                     "IV effect needs data >> cache\n";
    }

    // Sanity: the scores are the same graph property.
    double delta = 0.0;
    for (VertexId v = 0; v < graph.numVertices(); ++v)
        delta += std::abs(pr.scores[v] - pr2.scores[p.newId(v)]);
    std::cout << "score permutation check: L1 delta = "
              << formatDouble(delta, 9) << "\n";
    return 0;
}
