/**
 * @file
 * Streaming-scale demo: simulate an SpMV trace far bigger than memory
 * could hold materialized.
 *
 * A scale-20 RMAT graph (~1M vertices, ~16.8M edges) yields a trace
 * of ~35M memory accesses; at 32 bytes each, materializing it would
 * take over 1 GB. The streaming pipeline keeps only the scheduler's
 * chunk buffer resident — O(numThreads x chunkSize) records — and
 * reports both numbers so the bound is visible.
 *
 * Build & run:  ./build/examples/streaming_scale
 * Environment:  GRAL_RMAT_SCALE overrides the RMAT scale (default 20).
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "graph/degree.h"
#include "graph/generators.h"
#include "metrics/miss_rate.h"
#include "spmv/trace_gen.h"

using namespace gral;

int
main()
{
    RMatParams params;
    params.scale = 20;
    if (const char *env = std::getenv("GRAL_RMAT_SCALE"))
        params.scale = static_cast<unsigned>(std::atoi(env));

    std::cout << "generating RMAT scale " << params.scale << "...\n";
    Graph graph = generateRMat(params);
    std::cout << "graph: |V|=" << graph.numVertices()
              << " |E|=" << graph.numEdges() << "\n";

    SimulationOptions sim;
    sim.cache.sizeBytes = 1 * 1024 * 1024; // 1 MB shared L3 stand-in
    sim.cache.associativity = 8;
    sim.simulateTlb = false;

    TraceOptions trace_options;
    auto reuse = degrees(graph, Direction::Out);
    auto profile = simulateMissProfile(
        makePullProducers(graph, trace_options), reuse, sim);

    std::uint64_t materialized =
        profile.totalAccesses * sizeof(MemoryAccess);
    TextTable table({"Streamed replay", "Value"});
    table.addRow({"trace accesses",
                  formatCount(profile.totalAccesses)});
    table.addRow({"peak resident trace memory",
                  formatBytes(profile.peakResidentBytes())});
    table.addRow({"materialized trace would be",
                  formatBytes(materialized)});
    table.addRow({"L3 miss rate %",
                  formatDouble(100.0 * profile.cache.missRate(), 2)});
    table.addRow(
        {"data miss rate %",
         formatDouble(100.0 * profile.dataMissRate(), 2)});
    table.print(std::cout);

    // The bound the pipeline guarantees: the resident set is the
    // scheduler's single chunk buffer, independent of |E|.
    std::uint64_t bound =
        static_cast<std::uint64_t>(sim.chunkSize) *
        sizeof(MemoryAccess);
    std::cout << "\nresident bound: chunk buffer = "
              << formatBytes(bound) << " ("
              << trace_options.numThreads << " threads x "
              << sim.chunkSize << "-access chunks share one buffer)\n";
    return profile.peakResidentBytes() <= bound ? 0 : 1;
}
